#include "telemetry/trace.hpp"

#include <cinttypes>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace lazydram::telemetry {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kRowActivate: return "act";
    case EventKind::kRowGroupDrop: return "drop";
    case EventKind::kVpPrediction: return "vp";
    case EventKind::kDmsStallBegin: return "stall_begin";
    case EventKind::kDmsStallEnd: return "stall_end";
    case EventKind::kDmsDelayChange: return "dms_delay";
    case EventKind::kAmsThresholdChange: return "ams_th";
    case EventKind::kCheckViolation: return "check";
  }
  LD_ASSERT_MSG(false, "unreachable");
  return "?";
}

JsonlTraceSink::JsonlTraceSink(const std::string& path) : path_(path) {
  out_ = std::fopen(path.c_str(), "w");
  if (out_ == nullptr) log_warn("cannot open trace file '%s'; tracing disabled", path.c_str());
}

JsonlTraceSink::~JsonlTraceSink() {
  if (out_ != nullptr) std::fclose(out_);
}

void JsonlTraceSink::on_event(const TraceEvent& e) {
  if (out_ == nullptr) return;
  std::fprintf(out_, "{\"type\":\"%s\",\"cycle\":%" PRIu64 ",\"ch\":%u",
               event_kind_name(e.kind), e.cycle, e.channel);
  if (e.bank >= 0) std::fprintf(out_, ",\"bank\":%d", e.bank);
  switch (e.kind) {
    case EventKind::kRowActivate:
      std::fprintf(out_, ",\"row\":%" PRIu64, e.a);
      break;
    case EventKind::kRowGroupDrop:
      std::fprintf(out_, ",\"row\":%" PRIu64 ",\"req\":%" PRIu64, e.a, e.b);
      break;
    case EventKind::kVpPrediction:
      std::fprintf(out_, ",\"line\":%" PRIu64 ",\"donor\":%" PRIu64 ",\"found\":%s", e.a,
                   e.b, e.f != 0.0 ? "true" : "false");
      break;
    case EventKind::kDmsStallBegin:
      std::fprintf(out_, ",\"req\":%" PRIu64 ",\"delay\":%" PRIu64, e.a, e.b);
      break;
    case EventKind::kDmsStallEnd:
      break;
    case EventKind::kDmsDelayChange:
      std::fprintf(out_, ",\"from\":%" PRIu64 ",\"to\":%" PRIu64 ",\"bwutil\":%.17g", e.b,
                   e.a, e.f);
      break;
    case EventKind::kAmsThresholdChange:
      std::fprintf(out_, ",\"from\":%" PRIu64 ",\"to\":%" PRIu64 ",\"coverage\":%.17g",
                   e.b, e.a, e.f);
      break;
    case EventKind::kCheckViolation:
      std::fprintf(out_, ",\"code\":%" PRIu64, e.a);
      break;
  }
  std::fputs("}\n", out_);
}

void JsonlTraceSink::on_window(const WindowSample& w) {
  if (out_ == nullptr) return;
  std::fprintf(out_,
               "{\"type\":\"window\",\"ch\":%u,\"index\":%" PRIu64 ",\"start\":%" PRIu64
               ",\"end\":%" PRIu64 ",\"ticks\":%" PRIu64 ",\"bus_busy\":%" PRIu64
               ",\"bwutil\":%.17g,\"delay_sum\":%" PRIu64 ",\"delay\":%.17g"
               ",\"th_rbl_sum\":%" PRIu64 ",\"th_rbl\":%.17g,\"queue\":%.17g"
               ",\"act\":%" PRIu64 ",\"row_hits\":%" PRIu64 ",\"reads\":%" PRIu64
               ",\"writes\":%" PRIu64 ",\"drops\":%" PRIu64 ",\"reads_received\":%" PRIu64
               ",\"coverage\":%.17g,\"energy_nj\":%.17g}\n",
               w.channel, w.index, w.start_cycle, w.end_cycle, w.ticks, w.bus_busy_cycles,
               w.bwutil, w.delay_sum, w.avg_delay, w.th_rbl_sum, w.avg_th_rbl,
               w.queue_occupancy, w.activations, w.row_hits, w.column_reads,
               w.column_writes, w.drops, w.reads_received, w.coverage, w.energy_nj);
}

}  // namespace lazydram::telemetry
