#include "telemetry/trace.hpp"

#include <cinttypes>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "telemetry/flight.hpp"

namespace lazydram::telemetry {

void Tracer::emit(const TraceEvent& event) {
  // Flight first: if the sink throws mid-run (it must not, but the checker
  // path behind it can), the ring still holds the event for the dump.
  if (flight_ != nullptr) flight_->record(event);
  if (sink_ != nullptr) sink_->on_event(event);
}

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kRowActivate: return "act";
    case EventKind::kRowGroupDrop: return "drop";
    case EventKind::kVpPrediction: return "vp";
    case EventKind::kDmsStallBegin: return "stall_begin";
    case EventKind::kDmsStallEnd: return "stall_end";
    case EventKind::kDmsDelayChange: return "dms_delay";
    case EventKind::kAmsThresholdChange: return "ams_th";
    case EventKind::kCheckViolation: return "check";
  }
  LD_ASSERT_MSG(false, "unreachable");
  return "?";
}

JsonlTraceSink::JsonlTraceSink(const std::string& path) : path_(path) {
  out_ = std::fopen(path.c_str(), "w");
  if (out_ == nullptr) log_warn("cannot open trace file '%s'; tracing disabled", path.c_str());
}

JsonlTraceSink::~JsonlTraceSink() {
  if (out_ != nullptr) std::fclose(out_);
}

void JsonlTraceSink::on_event(const TraceEvent& e) {
  if (out_ == nullptr) return;
  std::fprintf(out_, "{\"type\":\"%s\",\"cycle\":%" PRIu64 ",\"ch\":%u",
               event_kind_name(e.kind), e.cycle, e.channel);
  if (e.bank >= 0) std::fprintf(out_, ",\"bank\":%d", e.bank);
  switch (e.kind) {
    case EventKind::kRowActivate:
      std::fprintf(out_, ",\"row\":%" PRIu64, e.a);
      break;
    case EventKind::kRowGroupDrop:
      std::fprintf(out_, ",\"row\":%" PRIu64 ",\"req\":%" PRIu64, e.a, e.b);
      break;
    case EventKind::kVpPrediction:
      std::fprintf(out_, ",\"line\":%" PRIu64 ",\"donor\":%" PRIu64 ",\"found\":%s", e.a,
                   e.b, e.f != 0.0 ? "true" : "false");
      break;
    case EventKind::kDmsStallBegin:
      std::fprintf(out_, ",\"req\":%" PRIu64 ",\"delay\":%" PRIu64, e.a, e.b);
      break;
    case EventKind::kDmsStallEnd:
      break;
    case EventKind::kDmsDelayChange:
      std::fprintf(out_, ",\"from\":%" PRIu64 ",\"to\":%" PRIu64 ",\"bwutil\":%.17g", e.b,
                   e.a, e.f);
      break;
    case EventKind::kAmsThresholdChange:
      std::fprintf(out_, ",\"from\":%" PRIu64 ",\"to\":%" PRIu64 ",\"coverage\":%.17g",
                   e.b, e.a, e.f);
      break;
    case EventKind::kCheckViolation:
      std::fprintf(out_, ",\"code\":%" PRIu64, e.a);
      break;
  }
  std::fputs("}\n", out_);
}

void JsonlTraceSink::on_lifecycle(const RequestLifecycle& r) {
  if (out_ == nullptr) return;
  std::fprintf(out_,
               "{\"type\":\"req\",\"id\":%" PRIu64 ",\"ch\":%u,\"bank\":%d"
               ",\"line\":%" PRIu64 ",\"dropped\":%s,\"merged\":%u"
               ",\"inject\":%" PRIu64 ",\"eject\":%" PRIu64 ",\"enq_core\":%" PRIu64
               ",\"reply\":%" PRIu64 ",\"wakeup\":%" PRIu64 ",\"enq\":%" PRIu64
               ",\"gated\":%" PRIu64,
               r.id, r.channel, r.bank, r.line_addr, r.dropped ? "true" : "false",
               r.mshr_merges, r.inject_core, r.eject_core, r.enqueue_core,
               r.reply_core, r.wakeup_core, r.enqueue_mem, r.gated_cycles);
  if (r.tenant != 0) std::fprintf(out_, ",\"tenant\":%u", r.tenant);
  if (r.dropped)
    std::fprintf(out_, ",\"drop\":%" PRIu64, r.drop_mem);
  else
    std::fprintf(out_, ",\"cas\":%" PRIu64 ",\"done\":%" PRIu64, r.cas_mem, r.done_mem);
  if (!r.gates.empty()) {
    std::fputs(",\"gates\":[", out_);
    for (std::size_t i = 0; i < r.gates.size(); ++i)
      std::fprintf(out_, "%s[%" PRIu64 ",%" PRIu64 "]", i == 0 ? "" : ",",
                   r.gates[i].begin, r.gates[i].end);
    std::fputc(']', out_);
  }
  std::fputs("}\n", out_);
}

void JsonlTraceSink::on_window(const WindowSample& w) {
  if (out_ == nullptr) return;
  std::fprintf(out_,
               "{\"type\":\"window\",\"ch\":%u,\"index\":%" PRIu64 ",\"start\":%" PRIu64
               ",\"end\":%" PRIu64 ",\"ticks\":%" PRIu64 ",\"bus_busy\":%" PRIu64
               ",\"bwutil\":%.17g,\"delay_sum\":%" PRIu64 ",\"delay\":%.17g"
               ",\"th_rbl_sum\":%" PRIu64 ",\"th_rbl\":%.17g,\"queue\":%.17g"
               ",\"act\":%" PRIu64 ",\"row_hits\":%" PRIu64 ",\"reads\":%" PRIu64
               ",\"writes\":%" PRIu64 ",\"drops\":%" PRIu64 ",\"reads_received\":%" PRIu64
               ",\"coverage\":%.17g,\"energy_nj\":%.17g,\"e_row\":%.17g"
               ",\"e_access\":%.17g,\"e_bg\":%.17g,\"e_ref\":%.17g,\"power_w\":%.17g",
               w.channel, w.index, w.start_cycle, w.end_cycle, w.ticks, w.bus_busy_cycles,
               w.bwutil, w.delay_sum, w.avg_delay, w.th_rbl_sum, w.avg_th_rbl,
               w.queue_occupancy, w.activations, w.row_hits, w.column_reads,
               w.column_writes, w.drops, w.reads_received, w.coverage, w.energy_nj,
               w.energy_row_nj, w.energy_access_nj, w.energy_background_nj,
               w.energy_refresh_nj, w.avg_power_w);
  if (!w.banks.empty()) {
    std::fputs(",\"banks\":[", out_);
    for (std::size_t b = 0; b < w.banks.size(); ++b) {
      const BankWindowSample& bk = w.banks[b];
      std::fprintf(out_,
                   "%s{\"act\":%" PRIu64 ",\"cols\":%" PRIu64 ",\"row_hits\":%" PRIu64
                   ",\"drops\":%" PRIu64 ",\"stall\":%" PRIu64
                   ",\"active\":%" PRIu64 ",\"energy_nj\":%.17g}",
                   b == 0 ? "" : ",", bk.activations, bk.column_accesses, bk.row_hits,
                   bk.drops, bk.dms_stall_cycles, bk.active_cycles, bk.energy_nj);
    }
    std::fputc(']', out_);
  }
  if (!w.tenants.empty()) {
    std::fputs(",\"tenants\":[", out_);
    for (std::size_t t = 0; t < w.tenants.size(); ++t) {
      const TenantWindowSample& ts = w.tenants[t];
      std::fprintf(out_,
                   "%s{\"reads\":%" PRIu64 ",\"served\":%" PRIu64
                   ",\"drops\":%" PRIu64 "}",
                   t == 0 ? "" : ",", ts.reads_received, ts.reads_served, ts.drops);
    }
    std::fputc(']', out_);
  }
  std::fputs("}\n", out_);
}

}  // namespace lazydram::telemetry
