// Hierarchical stat registry. Components register named counters (exact
// u64), gauges (double) and histograms under dotted paths such as
// "dram.ch0.activations"; reports and metric collection then read the live
// values by name instead of scraping component accessors ad hoc.
//
// Registration stores a closure over the owning component, so the hub must
// not outlive the components registered into it (in practice: the hub lives
// beside the GpuTop for the duration of one run; snapshots outlive both).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace lazydram::telemetry {

class TelemetryHub {
 public:
  using CounterFn = std::function<std::uint64_t()>;
  using GaugeFn = std::function<double()>;

  void add_counter(const std::string& name, CounterFn fn);
  void add_gauge(const std::string& name, GaugeFn fn);
  void add_histogram(const std::string& name, const Histogram* hist);

  bool has_counter(const std::string& name) const { return counters_.count(name) != 0; }
  bool has_gauge(const std::string& name) const { return gauges_.count(name) != 0; }

  /// Evaluate one entry; asserts the name is registered.
  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const Histogram& histogram(const std::string& name) const;

  /// Sum of every registered counter whose name matches `prefix` + anything
  /// + `suffix` (e.g. sum_counters("dram.ch", ".activations")).
  std::uint64_t sum_counters(const std::string& prefix, const std::string& suffix) const;

  std::size_t size() const { return counters_.size() + gauges_.size() + histograms_.size(); }

  /// Point-in-time evaluation of every registered entry. Histograms are
  /// flattened to their bucket counts (index max_key+1 is the overflow).
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, std::vector<std::uint64_t>> histograms;
  };
  Snapshot snapshot() const;

 private:
  std::map<std::string, CounterFn> counters_;
  std::map<std::string, GaugeFn> gauges_;
  std::map<std::string, const Histogram*> histograms_;
};

/// Composes the conventional per-channel stat path: "<prefix>.ch<N>.<name>".
std::string channel_stat(const std::string& prefix, unsigned channel, const std::string& name);

}  // namespace lazydram::telemetry
