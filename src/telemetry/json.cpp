#include "telemetry/json.hpp"

#include <cinttypes>
#include <cmath>

#include "common/assert.hpp"

namespace lazydram::telemetry {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::pre_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!wrote_element_.empty()) {
    if (wrote_element_.back()) std::fputc(',', out_);
    wrote_element_.back() = true;
  }
}

void JsonWriter::begin_object() {
  pre_value();
  std::fputc('{', out_);
  wrote_element_.push_back(false);
}

void JsonWriter::end_object() {
  LD_ASSERT(!wrote_element_.empty() && !after_key_);
  wrote_element_.pop_back();
  std::fputc('}', out_);
}

void JsonWriter::begin_array() {
  pre_value();
  std::fputc('[', out_);
  wrote_element_.push_back(false);
}

void JsonWriter::end_array() {
  LD_ASSERT(!wrote_element_.empty() && !after_key_);
  wrote_element_.pop_back();
  std::fputc(']', out_);
}

void JsonWriter::key(const char* name) {
  LD_ASSERT_MSG(!after_key_, "two keys in a row");
  if (!wrote_element_.empty()) {
    if (wrote_element_.back()) std::fputc(',', out_);
    wrote_element_.back() = true;
  }
  std::fprintf(out_, "\"%s\":", name);
  after_key_ = true;
}

void JsonWriter::value(std::uint64_t v) {
  pre_value();
  std::fprintf(out_, "%" PRIu64, v);
}

void JsonWriter::value(std::int64_t v) {
  pre_value();
  std::fprintf(out_, "%" PRId64, v);
}

void JsonWriter::value(double v) {
  pre_value();
  if (!std::isfinite(v)) {
    std::fputs("null", out_);
    return;
  }
  // %.17g round-trips IEEE doubles exactly (the determinism tests rely on
  // recomputing aggregates from reported series).
  std::fprintf(out_, "%.17g", v);
}

void JsonWriter::value(bool v) {
  pre_value();
  std::fputs(v ? "true" : "false", out_);
}

void JsonWriter::value(const char* v) {
  pre_value();
  std::fprintf(out_, "\"%s\"", json_escape(v).c_str());
}

}  // namespace lazydram::telemetry
