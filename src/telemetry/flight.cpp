#include "telemetry/flight.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace lazydram::telemetry {

namespace {

struct FlightRegistry {
  std::mutex mu;
  std::vector<FlightRecorder*> recorders;
};

FlightRegistry& flight_registry() {
  static FlightRegistry* r = new FlightRegistry();
  return *r;
}

std::atomic<bool> g_dumps_deferred{false};

void flight_assert_hook(const char* expr, const char* file, int line,
                        const char* msg) {
  std::string detail = std::string(expr) + " at " + file + ":" + std::to_string(line);
  if (msg != nullptr && msg[0] != '\0') {
    detail += ": ";
    detail += msg;
  }
  FlightRecorder::dump_all("assert", detail);
}

void write_json_escaped(std::FILE* out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        std::fputs("\\\"", out);
        break;
      case '\\':
        std::fputs("\\\\", out);
        break;
      case '\n':
        std::fputs("\\n", out);
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::fprintf(out, "\\u%04x", c);
        } else {
          std::fputc(c, out);
        }
    }
  }
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t depth) : depth_(depth) {
  // Pre-size so record() never reallocates rings_ — lanes index it
  // concurrently during parallel epochs.
  rings_.resize(kMaxChannels);
  FlightRegistry& reg = flight_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.recorders.push_back(this);
  // The first recorder arms the LD_ASSERT crash hook for the process.
  if (detail::assert_hook() == nullptr) {
    detail::assert_hook() = &flight_assert_hook;
  }
}

FlightRecorder::~FlightRecorder() {
  FlightRegistry& reg = flight_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.recorders.erase(
      std::remove(reg.recorders.begin(), reg.recorders.end(), this),
      reg.recorders.end());
}

void FlightRecorder::record(const TraceEvent& event) {
  if (depth_ == 0 || event.channel >= rings_.size()) return;
  Ring& ring = rings_[event.channel];
  if (ring.buf.size() < depth_) {
    ring.buf.push_back(event);
  } else {
    ring.buf[ring.total % depth_] = event;
  }
  ++ring.total;
}

std::uint64_t FlightRecorder::recorded() const {
  std::uint64_t total = 0;
  for (const Ring& ring : rings_) total += ring.total;
  return total;
}

std::vector<TraceEvent> FlightRecorder::ordered_events() const {
  struct Tagged {
    TraceEvent event;
    std::uint64_t seq = 0;  // per-channel arrival order
  };
  std::vector<Tagged> all;
  for (const Ring& ring : rings_) {
    const std::uint64_t n = ring.buf.size();
    const std::uint64_t oldest = ring.total - n;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t seq = oldest + i;
      all.push_back({ring.buf[n < depth_ ? i : seq % depth_], seq});
    }
  }
  std::sort(all.begin(), all.end(), [](const Tagged& x, const Tagged& y) {
    if (x.event.cycle != y.event.cycle) return x.event.cycle < y.event.cycle;
    if (x.event.channel != y.event.channel) return x.event.channel < y.event.channel;
    return x.seq < y.seq;
  });
  std::vector<TraceEvent> out;
  out.reserve(all.size());
  for (const Tagged& t : all) out.push_back(t.event);
  return out;
}

void FlightRecorder::dump(std::FILE* out, const char* reason,
                          const std::string& detail) const {
  std::fputs("{\"reason\":\"", out);
  write_json_escaped(out, reason);
  std::fputs("\",\"detail\":\"", out);
  write_json_escaped(out, detail);
  std::fprintf(out, "\",\"depth\":%zu,\"recorded\":%llu,\"events\":[", depth_,
               static_cast<unsigned long long>(recorded()));
  const std::vector<TraceEvent> events = ordered_events();
  bool first = true;
  for (const TraceEvent& e : events) {
    std::fprintf(out,
                 "%s\n  {\"type\":\"%s\",\"cycle\":%llu,\"ch\":%u,\"bank\":%d,"
                 "\"a\":%llu,\"b\":%llu,\"f\":%.6g}",
                 first ? "" : ",", event_kind_name(e.kind),
                 static_cast<unsigned long long>(e.cycle), e.channel, e.bank,
                 static_cast<unsigned long long>(e.a),
                 static_cast<unsigned long long>(e.b), e.f);
    first = false;
  }
  std::fputs(events.empty() ? "]}" : "\n]}", out);
}

void FlightRecorder::dump_all(const char* reason, const std::string& detail) {
  if (g_dumps_deferred.load(std::memory_order_relaxed)) return;
  FlightRegistry& reg = flight_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.recorders.empty()) return;
  const std::string path = dump_path();
  std::FILE* out = std::fopen(path.c_str(), "w");
  std::size_t total_events = 0;
  if (out != nullptr) {
    std::fputs("{\"flight\":[\n", out);
    bool first = true;
    for (const FlightRecorder* rec : reg.recorders) {
      if (!first) std::fputs(",\n", out);
      rec->dump(out, reason, detail);
      total_events += rec->ordered_events().size();
      first = false;
    }
    std::fputs("\n]}\n", out);
    std::fclose(out);
  } else {
    for (const FlightRecorder* rec : reg.recorders) {
      total_events += rec->ordered_events().size();
    }
  }
  log_status("flight dump [%s]: %s — %zu event(s) from %zu recorder(s) %s %s",
             reason, detail.c_str(), total_events, reg.recorders.size(),
             out != nullptr ? "written to" : "NOT written (open failed):",
             path.c_str());
}

void FlightRecorder::set_deferred(bool deferred) {
  g_dumps_deferred.store(deferred, std::memory_order_relaxed);
}

std::string FlightRecorder::dump_path() {
  const char* env = std::getenv("LAZYDRAM_FLIGHT_DUMP");
  if (env != nullptr && env[0] != '\0') return env;
  return "lazydram_flight.json";
}

}  // namespace lazydram::telemetry
