#include "telemetry/window_sampler.hpp"

#include <utility>

namespace lazydram::telemetry {

void WindowSampler::set_bank_probe(unsigned num_banks, BankProbeFn fn) {
  bank_probe_ = std::move(fn);
  bank_scratch_.assign(num_banks, BankProbe{});
  bank_base_.assign(num_banks, BankProbe{});
}

void WindowSampler::set_tenant_probe(unsigned num_tenants, TenantProbeFn fn) {
  tenant_probe_ = std::move(fn);
  tenant_scratch_.assign(num_tenants, TenantProbe{});
  tenant_base_.assign(num_tenants, TenantProbe{});
}

void WindowSampler::tick(Cycle now, const WindowProbe& probe) {
  // Same boundary arithmetic as DmsUnit/AmsUnit: the tick that lands on the
  // boundary closes the elapsed window before being accounted itself.
  if (now - window_start_ >= window_ && ticks_ > 0) close_window(now, probe);

  ++ticks_;
  delay_sum_ += probe.dms_delay;
  th_rbl_sum_ += probe.th_rbl;
  queue_sum_ += probe.queue_size;
  last_tick_ = now;
}

void WindowSampler::advance(Cycle to, std::uint64_t n, const WindowProbe& probe) {
  ticks_ += n;
  delay_sum_ += probe.dms_delay * n;
  th_rbl_sum_ += probe.th_rbl * n;
  queue_sum_ += probe.queue_size * n;
  last_tick_ = to;
}

void WindowSampler::flush(const WindowProbe& probe) {
  if (ticks_ > 0) close_window(last_tick_ + 1, probe);
}

void WindowSampler::close_window(Cycle end, const WindowProbe& probe) {
  WindowSample w;
  w.channel = channel_;
  w.index = static_cast<std::uint64_t>(samples_.size());
  w.start_cycle = window_start_;
  w.end_cycle = end;
  w.ticks = ticks_;

  const WindowProbe& base = at_window_start_;
  w.bus_busy_cycles = probe.bus_busy_cycles - base.bus_busy_cycles;
  w.activations = probe.activations - base.activations;
  w.column_reads = probe.column_reads - base.column_reads;
  w.column_writes = probe.column_writes - base.column_writes;
  w.drops = probe.reads_dropped - base.reads_dropped;
  w.reads_received = probe.reads_received - base.reads_received;
  w.energy_nj = probe.energy_nj - base.energy_nj;
  w.energy_row_nj = probe.energy_row_nj - base.energy_row_nj;
  w.energy_access_nj = probe.energy_access_nj - base.energy_access_nj;
  w.energy_background_nj = probe.energy_background_nj - base.energy_background_nj;
  w.energy_refresh_nj = probe.energy_refresh_nj - base.energy_refresh_nj;

  const std::uint64_t accesses = w.column_reads + w.column_writes;
  // Every activation serves at least its first column access; the remainder
  // are row-buffer hits. A window can close mid-row, so clamp at zero.
  w.row_hits = accesses > w.activations ? accesses - w.activations : 0;

  const double ticks = static_cast<double>(ticks_);
  w.bwutil = static_cast<double>(w.bus_busy_cycles) / ticks;
  w.delay_sum = delay_sum_;
  w.avg_delay = static_cast<double>(delay_sum_) / ticks;
  w.th_rbl_sum = th_rbl_sum_;
  w.avg_th_rbl = static_cast<double>(th_rbl_sum_) / ticks;
  w.queue_occupancy = static_cast<double>(queue_sum_) / ticks;
  w.coverage = w.reads_received == 0
                   ? 0.0
                   : static_cast<double>(w.drops) / static_cast<double>(w.reads_received);
  w.avg_power_w = w.energy_nj / ticks * power_scale_;

  if (bank_probe_) {
    for (auto& b : bank_scratch_) b = BankProbe{};
    bank_probe_(end, bank_scratch_);
    w.banks.resize(bank_scratch_.size());
    for (std::size_t b = 0; b < bank_scratch_.size(); ++b) {
      const BankProbe& cur = bank_scratch_[b];
      const BankProbe& base = bank_base_[b];
      BankWindowSample& out = w.banks[b];
      out.activations = cur.activations - base.activations;
      out.column_accesses = cur.column_accesses - base.column_accesses;
      out.drops = cur.drops - base.drops;
      out.dms_stall_cycles = cur.stall_cycles - base.stall_cycles;
      out.active_cycles = cur.active_cycles - base.active_cycles;
      out.energy_nj = cur.energy_nj - base.energy_nj;
      out.row_hits = out.column_accesses > out.activations
                         ? out.column_accesses - out.activations
                         : 0;
    }
    bank_base_ = bank_scratch_;
  }

  if (tenant_probe_) {
    for (auto& t : tenant_scratch_) t = TenantProbe{};
    tenant_probe_(tenant_scratch_);
    w.tenants.resize(tenant_scratch_.size());
    for (std::size_t t = 0; t < tenant_scratch_.size(); ++t) {
      const TenantProbe& cur = tenant_scratch_[t];
      const TenantProbe& prev = tenant_base_[t];
      w.tenants[t].reads_received = cur.reads_received - prev.reads_received;
      w.tenants[t].reads_served = cur.reads_served - prev.reads_served;
      w.tenants[t].drops = cur.drops - prev.drops;
    }
    tenant_base_ = tenant_scratch_;
  }

  samples_.push_back(w);
  if (tracer_ != nullptr) tracer_->emit_window(w);

  window_start_ = end;
  at_window_start_ = probe;
  ticks_ = 0;
  delay_sum_ = 0;
  th_rbl_sum_ = 0;
  queue_sum_ = 0;
}

}  // namespace lazydram::telemetry
