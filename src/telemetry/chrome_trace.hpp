// Chrome Trace Event Format exporter (the JSON array flavor), viewable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Rendering model:
//
//  * One "process" per memory channel (pid = channel id, named via metadata
//    events), so each channel gets its own track group.
//  * Each sampled request lifecycle becomes a family of async spans
//    (ph "b"/"e", cat "req", id = request id): a parent `req` span covering
//    the whole pending interval, with nested attribution child spans
//    (icnt_request / partition_wait / queue_wait incl. dms_gated gates /
//    service or vp_serve / reply_return).
//  * WindowSampler windows become counter tracks (ph "C"): per-channel
//    queue depth, BWUTIL, DMS delay, Th_RBL, drops, a "power" track (average
//    watts per window, stacked by energy component) and a cumulative
//    "energy" track (nJ by component; monotone non-decreasing) — plus
//    stacked per-bank series (bank.act, bank.row_hits, bank.stall,
//    bank.drops, bank.energy) when the sampler carries bank columns.
//  * Low-rate control events (DMS delay change, Th_RBL change, checker
//    violations) become instants (ph "i"). High-rate per-command events
//    (ACT / drop / VP / stall) are skipped: windows and spans already carry
//    them in aggregate, and instants at that volume would swamp the UI.
//
// Timebase: 1 memory cycle = 1 µs on the trace axis (ts is a µs double in
// the format; scaling by the real period would only shrink the numbers).
// Core-domain stamps are converted with the configured core->mem ratio.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "telemetry/selfprof.hpp"
#include "telemetry/trace.hpp"

namespace lazydram::telemetry {

class ChromeTraceSink : public TraceSink {
 public:
  /// `core_to_mem` converts core-cycle stamps onto the memory-cycle axis
  /// (mem_clock_mhz / core_clock_mhz; pass 1.0 when there is no core clock).
  explicit ChromeTraceSink(const std::string& path, double core_to_mem = 1.0);
  ~ChromeTraceSink() override;

  ChromeTraceSink(const ChromeTraceSink&) = delete;
  ChromeTraceSink& operator=(const ChromeTraceSink&) = delete;

  bool ok() const { return out_ != nullptr; }
  const std::string& path() const { return path_; }

  void on_event(const TraceEvent& event) override;
  void on_window(const WindowSample& window) override;
  void on_lifecycle(const RequestLifecycle& request) override;

  /// Exports the self-profiler's per-thread zone timelines as a separate
  /// "selfprof" process (pid kSelfProfPid, one tid per simulator thread,
  /// sync "B"/"E" spans, ts in wall-clock µs since the profiler epoch) next
  /// to the sim-time tracks. Call once, after the run, before destruction.
  /// Zones still open at snapshot time appear as unclosed "B"s — Perfetto
  /// renders them to the trace end.
  void write_self_profile(const SelfProfiler::Snapshot& snapshot);

  /// The self-time process id: far above any channel id so the track group
  /// can't collide with a channel process.
  static constexpr unsigned kSelfProfPid = 9999;

 private:
  void raw(const char* fmt, ...);
  void ensure_process(ChannelId channel);
  void async_begin(ChannelId pid, RequestId id, const char* name, double ts);
  void async_end(ChannelId pid, RequestId id, double ts);

  std::string path_;
  std::FILE* out_ = nullptr;
  bool first_ = true;
  double core_to_mem_;
  std::vector<bool> process_named_;
  /// Running per-channel energy totals feeding the cumulative "energy"
  /// counter track (monotone non-decreasing; validated by trace_summary).
  struct EnergyCum {
    double row = 0.0;
    double access = 0.0;
    double background = 0.0;
    double refresh = 0.0;
  };
  std::vector<EnergyCum> energy_cum_;
};

}  // namespace lazydram::telemetry
