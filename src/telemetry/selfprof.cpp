#include "telemetry/selfprof.hpp"

#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

namespace lazydram::telemetry {

std::atomic<bool> g_selfprof_enabled{false};

namespace {

// Zone tree node, per thread. Children form a singly-linked list; lookup is a
// pointer-compare-then-strcmp walk (zone names are literals, so the pointer
// compare almost always hits and the list stays short — fan-out is the number
// of distinct child zones, typically < 8).
struct Node {
  const char* name = nullptr;
  std::int32_t parent = -1;
  std::int32_t first_child = -1;
  std::int32_t next_sibling = -1;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

struct OpenFrame {
  std::int32_t node = 0;
  std::uint64_t t0 = 0;
};

// Timeline cap per thread (~1 MiB of SelfEvent). Beyond it, whole zone pairs
// are dropped via the suppressed-depth counter so begin/end stays balanced.
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 16;

}  // namespace

struct SelfProfiler::ThreadState {
  std::vector<Node> nodes;
  std::vector<OpenFrame> stack;
  std::vector<SelfEvent> events;
  std::uint64_t dropped_zones = 0;
  unsigned suppressed_depth = 0;
  unsigned index = 0;

  ThreadState() {
    Node root;
    root.name = "";
    nodes.push_back(root);
  }
};

// Friend bridge: re-exports the private ThreadState so the file-local
// Registry below can name it.
struct SelfProfilerAccess {
  using ThreadState = SelfProfiler::ThreadState;
};

namespace {

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<SelfProfilerAccess::ThreadState>> threads;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives exiting threads
  return *r;
}

}  // namespace

SelfProfiler::SelfProfiler() = default;

SelfProfiler& SelfProfiler::instance() {
  static SelfProfiler* p = new SelfProfiler();
  return *p;
}

namespace {
std::chrono::steady_clock::time_point profiler_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}
}  // namespace

std::uint64_t SelfProfiler::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - profiler_epoch())
          .count());
}

SelfProfiler::ThreadState& SelfProfiler::state() {
  thread_local std::shared_ptr<ThreadState> tls;
  if (tls == nullptr) {
    tls = std::make_shared<ThreadState>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    tls->index = static_cast<unsigned>(reg.threads.size());
    reg.threads.push_back(tls);
  }
  return *tls;
}

void SelfProfiler::enter(const char* name) {
  ThreadState& st = state();
  const std::uint64_t t = instance().now_ns();
  const std::int32_t cur = st.stack.empty() ? 0 : st.stack.back().node;
  std::int32_t child = st.nodes[cur].first_child;
  while (child != -1) {
    const Node& n = st.nodes[child];
    if (n.name == name || std::strcmp(n.name, name) == 0) break;
    child = n.next_sibling;
  }
  if (child == -1) {
    child = static_cast<std::int32_t>(st.nodes.size());
    Node n;
    n.name = name;
    n.parent = cur;
    n.next_sibling = st.nodes[cur].first_child;
    st.nodes.push_back(n);
    st.nodes[cur].first_child = child;
  }
  ++st.nodes[child].count;
  st.stack.push_back({child, t});
  if (st.suppressed_depth == 0 && st.events.size() < kMaxEventsPerThread) {
    st.events.push_back({t, name});
  } else {
    ++st.suppressed_depth;
    ++st.dropped_zones;
  }
}

void SelfProfiler::exit() {
  ThreadState& st = state();
  if (st.stack.empty()) return;  // tolerate unbalanced exit after reset()
  const std::uint64_t t = instance().now_ns();
  const OpenFrame frame = st.stack.back();
  st.stack.pop_back();
  st.nodes[frame.node].total_ns += t - frame.t0;
  if (st.suppressed_depth > 0) {
    --st.suppressed_depth;  // this exit pairs with an unrecorded enter
  } else {
    st.events.push_back({t, nullptr});
  }
}

namespace {

// Merge target: one node per (parent-path, name), keyed by name at each level.
struct MergeNode {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::map<std::string, MergeNode> children;
};

void merge_tree(const std::vector<Node>& nodes, std::int32_t idx, MergeNode& out) {
  for (std::int32_t c = nodes[idx].first_child; c != -1; c = nodes[c].next_sibling) {
    MergeNode& m = out.children[nodes[c].name];
    m.count += nodes[c].count;
    m.total_ns += nodes[c].total_ns;
    merge_tree(nodes, c, m);
  }
}

void flatten(const MergeNode& node, const std::string& name, unsigned depth,
             std::vector<SelfZoneNode>& out) {
  std::uint64_t child_ns = 0;
  for (const auto& [cname, child] : node.children) child_ns += child.total_ns;
  SelfZoneNode z;
  z.name = name;
  z.depth = depth;
  z.count = node.count;
  z.inclusive_seconds = static_cast<double>(node.total_ns) * 1e-9;
  z.exclusive_seconds =
      static_cast<double>(node.total_ns > child_ns ? node.total_ns - child_ns : 0) *
      1e-9;
  out.push_back(std::move(z));
  for (const auto& [cname, child] : node.children) {
    flatten(child, cname, depth + 1, out);
  }
}

}  // namespace

SelfProfiler::Snapshot SelfProfiler::snapshot() const {
  Snapshot snap;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  MergeNode root;
  for (const auto& st : reg.threads) {
    merge_tree(st->nodes, 0, root);
    SelfThreadTimeline tl;
    tl.index = st->index;
    tl.events = st->events;
    tl.dropped_zones = st->dropped_zones;
    if (!tl.events.empty() || tl.dropped_zones != 0) {
      snap.timelines.push_back(std::move(tl));
    }
  }
  for (const auto& [name, child] : root.children) {
    flatten(child, name, 0, snap.zones);
  }
  return snap;
}

void SelfProfiler::reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& st : reg.threads) {
    for (Node& n : st->nodes) {
      n.count = 0;
      n.total_ns = 0;
    }
    st->events.clear();
    st->dropped_zones = 0;
    st->suppressed_depth = 0;
    // Open frames keep their node ids (the tree structure survives), so a
    // zone spanning the reset still closes cleanly — its duration just
    // includes pre-reset time.
  }
}

}  // namespace lazydram::telemetry
