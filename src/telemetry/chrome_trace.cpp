#include "telemetry/chrome_trace.hpp"

#include <cinttypes>
#include <cstdarg>
#include <algorithm>

#include "common/log.hpp"

namespace lazydram::telemetry {

ChromeTraceSink::ChromeTraceSink(const std::string& path, double core_to_mem)
    : path_(path), core_to_mem_(core_to_mem > 0.0 ? core_to_mem : 1.0) {
  out_ = std::fopen(path.c_str(), "w");
  if (out_ == nullptr) {
    log_warn("cannot open trace file '%s'; tracing disabled", path.c_str());
    return;
  }
  std::fputs("[\n", out_);
}

ChromeTraceSink::~ChromeTraceSink() {
  if (out_ == nullptr) return;
  std::fputs("\n]\n", out_);
  std::fclose(out_);
}

void ChromeTraceSink::raw(const char* fmt, ...) {
  if (out_ == nullptr) return;
  if (!first_) std::fputs(",\n", out_);
  first_ = false;
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(out_, fmt, args);
  va_end(args);
}

void ChromeTraceSink::ensure_process(ChannelId channel) {
  if (channel >= process_named_.size()) process_named_.resize(channel + 1, false);
  if (process_named_[channel]) return;
  process_named_[channel] = true;
  raw("{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
      "\"args\":{\"name\":\"mem channel %u\"}}",
      channel, channel);
}

void ChromeTraceSink::async_begin(ChannelId pid, RequestId id, const char* name, double ts) {
  raw("{\"ph\":\"b\",\"cat\":\"req\",\"id\":%" PRIu64 ",\"pid\":%u,\"tid\":0"
      ",\"ts\":%.3f,\"name\":\"%s\"}",
      id, pid, ts, name);
}

void ChromeTraceSink::async_end(ChannelId pid, RequestId id, double ts) {
  raw("{\"ph\":\"e\",\"cat\":\"req\",\"id\":%" PRIu64 ",\"pid\":%u,\"tid\":0"
      ",\"ts\":%.3f}",
      id, pid, ts);
}

void ChromeTraceSink::on_event(const TraceEvent& e) {
  if (out_ == nullptr) return;
  // Only low-rate control-plane events become instants; per-command events
  // (ACT, drop, VP, stall begin/end) are carried in aggregate by the window
  // counters and the request spans, and would swamp the UI at full rate.
  switch (e.kind) {
    case EventKind::kDmsDelayChange:
      ensure_process(e.channel);
      raw("{\"ph\":\"i\",\"s\":\"p\",\"pid\":%u,\"tid\":0,\"ts\":%.3f"
          ",\"name\":\"dms_delay %" PRIu64 "->%" PRIu64 "\"}",
          e.channel, static_cast<double>(e.cycle), e.b, e.a);
      break;
    case EventKind::kAmsThresholdChange:
      ensure_process(e.channel);
      raw("{\"ph\":\"i\",\"s\":\"p\",\"pid\":%u,\"tid\":0,\"ts\":%.3f"
          ",\"name\":\"th_rbl %" PRIu64 "->%" PRIu64 "\"}",
          e.channel, static_cast<double>(e.cycle), e.b, e.a);
      break;
    case EventKind::kCheckViolation:
      ensure_process(e.channel);
      raw("{\"ph\":\"i\",\"s\":\"p\",\"pid\":%u,\"tid\":0,\"ts\":%.3f"
          ",\"name\":\"check_violation %" PRIu64 "\"}",
          e.channel, static_cast<double>(e.cycle), e.a);
      break;
    default:
      break;
  }
}

void ChromeTraceSink::on_window(const WindowSample& w) {
  if (out_ == nullptr) return;
  ensure_process(w.channel);
  const double ts = static_cast<double>(w.end_cycle);
  raw("{\"ph\":\"C\",\"pid\":%u,\"ts\":%.3f,\"name\":\"queue\","
      "\"args\":{\"pending\":%.6g}}",
      w.channel, ts, w.queue_occupancy);
  raw("{\"ph\":\"C\",\"pid\":%u,\"ts\":%.3f,\"name\":\"bwutil\","
      "\"args\":{\"bwutil\":%.6g}}",
      w.channel, ts, w.bwutil);
  raw("{\"ph\":\"C\",\"pid\":%u,\"ts\":%.3f,\"name\":\"dms_delay\","
      "\"args\":{\"delay\":%.6g}}",
      w.channel, ts, w.avg_delay);
  raw("{\"ph\":\"C\",\"pid\":%u,\"ts\":%.3f,\"name\":\"th_rbl\","
      "\"args\":{\"th_rbl\":%.6g}}",
      w.channel, ts, w.avg_th_rbl);
  raw("{\"ph\":\"C\",\"pid\":%u,\"ts\":%.3f,\"name\":\"drops\","
      "\"args\":{\"drops\":%" PRIu64 "}}",
      w.channel, ts, w.drops);
  // Power timeline: the window's average power in watts (one series per
  // energy component, scaled from the per-window energies so the stack sums
  // to the total), plus a cumulative per-component energy track. The
  // cumulative track is monotone non-decreasing by construction — the
  // property tools/trace_summary.py --check validates.
  const double per_w = w.energy_nj > 0.0 ? w.avg_power_w / w.energy_nj : 0.0;
  raw("{\"ph\":\"C\",\"pid\":%u,\"ts\":%.3f,\"name\":\"power\","
      "\"args\":{\"row\":%.6g,\"access\":%.6g,\"background\":%.6g,\"refresh\":%.6g}}",
      w.channel, ts, w.energy_row_nj * per_w, w.energy_access_nj * per_w,
      w.energy_background_nj * per_w, w.energy_refresh_nj * per_w);
  if (w.channel >= energy_cum_.size()) energy_cum_.resize(w.channel + 1, {});
  EnergyCum& cum = energy_cum_[w.channel];
  cum.row += w.energy_row_nj;
  cum.access += w.energy_access_nj;
  cum.background += w.energy_background_nj;
  cum.refresh += w.energy_refresh_nj;
  raw("{\"ph\":\"C\",\"pid\":%u,\"ts\":%.3f,\"name\":\"energy\","
      "\"args\":{\"row\":%.10g,\"access\":%.10g,\"background\":%.10g,\"refresh\":%.10g}}",
      w.channel, ts, cum.row, cum.access, cum.background, cum.refresh);
  // Stacked per-tenant series: one counter track per metric, one series per
  // tenant, so Perfetto shows each client's share of the channel over time.
  if (!w.tenants.empty()) {
    struct TenantSeries {
      const char* name;
      std::uint64_t (*get)(const TenantWindowSample&);
    };
    static constexpr TenantSeries kTenantSeries[] = {
        {"tenant.reads", [](const TenantWindowSample& t) { return t.reads_received; }},
        {"tenant.served", [](const TenantWindowSample& t) { return t.reads_served; }},
        {"tenant.drops", [](const TenantWindowSample& t) { return t.drops; }},
    };
    for (const TenantSeries& s : kTenantSeries) {
      if (!first_) std::fputs(",\n", out_);
      first_ = false;
      std::fprintf(out_, "{\"ph\":\"C\",\"pid\":%u,\"ts\":%.3f,\"name\":\"%s\",\"args\":{",
                   w.channel, ts, s.name);
      for (std::size_t t = 0; t < w.tenants.size(); ++t)
        std::fprintf(out_, "%s\"t%zu\":%" PRIu64, t == 0 ? "" : ",", t,
                     s.get(w.tenants[t]));
      std::fputs("}}", out_);
    }
  }
  if (w.banks.empty()) return;
  // Stacked per-bank energy (nJ spent this window, all components).
  if (!first_) std::fputs(",\n", out_);
  first_ = false;
  std::fprintf(out_, "{\"ph\":\"C\",\"pid\":%u,\"ts\":%.3f,\"name\":\"bank.energy\",\"args\":{",
               w.channel, ts);
  for (std::size_t b = 0; b < w.banks.size(); ++b)
    std::fprintf(out_, "%s\"b%zu\":%.6g", b == 0 ? "" : ",", b, w.banks[b].energy_nj);
  std::fputs("}}", out_);
  // Stacked per-bank series: one counter track per metric, one series per
  // bank, so Perfetto renders the (window, bank) heatmap directly.
  struct Series {
    const char* name;
    std::uint64_t (*get)(const BankWindowSample&);
  };
  static constexpr Series kSeries[] = {
      {"bank.act", [](const BankWindowSample& b) { return b.activations; }},
      {"bank.row_hits", [](const BankWindowSample& b) { return b.row_hits; }},
      {"bank.stall", [](const BankWindowSample& b) { return b.dms_stall_cycles; }},
      {"bank.drops", [](const BankWindowSample& b) { return b.drops; }},
  };
  for (const Series& s : kSeries) {
    if (!first_) std::fputs(",\n", out_);
    first_ = false;
    std::fprintf(out_, "{\"ph\":\"C\",\"pid\":%u,\"ts\":%.3f,\"name\":\"%s\",\"args\":{",
                 w.channel, ts, s.name);
    for (std::size_t b = 0; b < w.banks.size(); ++b)
      std::fprintf(out_, "%s\"b%zu\":%" PRIu64, b == 0 ? "" : ",", b, s.get(w.banks[b]));
    std::fputs("}}", out_);
  }
}

void ChromeTraceSink::on_lifecycle(const RequestLifecycle& r) {
  if (out_ == nullptr) return;
  ensure_process(r.channel);
  const double ratio = core_to_mem_;
  const bool has_core = r.inject_core != 0;

  // All stamps on the memory-cycle axis. The two clock domains advance in
  // lockstep from a shared time base, so converted core stamps interleave
  // consistently with memory stamps up to one cycle of divider skew; the
  // monotonic cursor below absorbs that skew so b/e spans always nest.
  const double inject = static_cast<double>(r.inject_core) * ratio;
  const double eject = static_cast<double>(r.eject_core) * ratio;
  const double enq_core = static_cast<double>(r.enqueue_core) * ratio;
  const double reply = static_cast<double>(r.reply_core) * ratio;
  const double wakeup = static_cast<double>(r.wakeup_core) * ratio;
  const double enq = static_cast<double>(r.enqueue_mem);
  const double terminal = static_cast<double>(r.dropped ? r.drop_mem : r.done_mem);

  double cursor = has_core ? inject : enq;
  const auto clamp = [&cursor](double t) {
    cursor = std::max(cursor, t);
    return cursor;
  };

  const double begin = cursor;
  if (!first_) std::fputs(",\n", out_);
  first_ = false;
  std::fprintf(out_,
               "{\"ph\":\"b\",\"cat\":\"req\",\"id\":%" PRIu64 ",\"pid\":%u,\"tid\":0"
               ",\"ts\":%.3f,\"name\":\"req\",\"args\":{\"line\":%" PRIu64
               ",\"bank\":%d,\"tenant\":%u,\"merged\":%u,\"dropped\":%s}}",
               r.id, r.channel, begin, r.line_addr, r.bank, r.tenant, r.mshr_merges,
               r.dropped ? "true" : "false");

  if (has_core) {
    async_begin(r.channel, r.id, "icnt_request", clamp(inject));
    async_end(r.channel, r.id, clamp(eject));
    async_begin(r.channel, r.id, "partition_wait", clamp(eject));
    async_end(r.channel, r.id, clamp(enq_core));
  }

  async_begin(r.channel, r.id, "pending", clamp(enq));
  for (const GateInterval& g : r.gates) {
    async_begin(r.channel, r.id, "dms_gated", clamp(static_cast<double>(g.begin)));
    async_end(r.channel, r.id, clamp(static_cast<double>(g.end)));
  }
  if (r.dropped) {
    async_end(r.channel, r.id, clamp(terminal));
    async_begin(r.channel, r.id, "vp_serve", clamp(terminal));
    async_end(r.channel, r.id, clamp(terminal));
  } else {
    async_end(r.channel, r.id, clamp(static_cast<double>(r.cas_mem)));
    async_begin(r.channel, r.id, "service", clamp(static_cast<double>(r.cas_mem)));
    async_end(r.channel, r.id, clamp(terminal));
  }
  if (r.reply_core != 0 && r.wakeup_core != 0) {
    async_begin(r.channel, r.id, "reply_return", clamp(reply));
    async_end(r.channel, r.id, clamp(wakeup));
  }
  async_end(r.channel, r.id, clamp(cursor));  // Close the parent "req" span.
}

void ChromeTraceSink::write_self_profile(const SelfProfiler::Snapshot& snapshot) {
  if (out_ == nullptr || snapshot.timelines.empty()) return;
  raw("{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
      "\"args\":{\"name\":\"selfprof\"}}",
      kSelfProfPid);
  for (const SelfThreadTimeline& tl : snapshot.timelines) {
    raw("{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"sim thread %u (%llu zones dropped)\"}}",
        kSelfProfPid, tl.index, tl.index,
        static_cast<unsigned long long>(tl.dropped_zones));
    for (const SelfEvent& e : tl.events) {
      // Self-time runs on its own wall-clock axis (µs since the profiler
      // epoch), intentionally not the sim-cycle axis of the channel tracks.
      const double ts = static_cast<double>(e.ns) / 1000.0;
      if (e.name != nullptr) {
        raw("{\"ph\":\"B\",\"cat\":\"selfprof\",\"pid\":%u,\"tid\":%u,"
            "\"ts\":%.3f,\"name\":\"%s\"}",
            kSelfProfPid, tl.index, ts, e.name);
      } else {
        raw("{\"ph\":\"E\",\"cat\":\"selfprof\",\"pid\":%u,\"tid\":%u,"
            "\"ts\":%.3f}",
            kSelfProfPid, tl.index, ts);
      }
    }
  }
}

}  // namespace lazydram::telemetry
