#include "telemetry/telemetry.hpp"

#include <cstdlib>

#include "telemetry/chrome_trace.hpp"

namespace lazydram::telemetry {

bool Telemetry::open_jsonl_trace(const std::string& path) {
  auto sink = std::make_unique<JsonlTraceSink>(path);
  if (!sink->ok()) return false;  // Already warned by the sink.
  owned_sink_ = std::move(sink);
  tracer_.set_sink(owned_sink_.get());
  return true;
}

bool Telemetry::open_chrome_trace(const std::string& path, double core_to_mem) {
  auto sink = std::make_unique<ChromeTraceSink>(path, core_to_mem);
  if (!sink->ok()) return false;  // Already warned by the sink.
  owned_sink_ = std::move(sink);
  tracer_.set_sink(owned_sink_.get());
  return true;
}

void Telemetry::enable_lifecycle(std::uint64_t sample_every) {
  lifecycle_ = std::make_unique<LifecycleCollector>(&tracer_, sample_every);
}

void Telemetry::enable_flight(std::size_t depth) {
  if (depth == 0) return;
  flight_ = std::make_unique<FlightRecorder>(depth);
  tracer_.set_flight(flight_.get());
}

ChromeTraceSink* Telemetry::chrome_sink() {
  return dynamic_cast<ChromeTraceSink*>(owned_sink_.get());
}

std::string env_string(const char* name) {
  const char* v = std::getenv(name);
  return v == nullptr ? std::string{} : std::string{v};
}

}  // namespace lazydram::telemetry
