#include "telemetry/telemetry.hpp"

#include <cstdlib>

namespace lazydram::telemetry {

bool Telemetry::open_jsonl_trace(const std::string& path) {
  owned_sink_ = std::make_unique<JsonlTraceSink>(path);
  if (!owned_sink_->ok()) {  // Already warned by the sink.
    owned_sink_.reset();
    return false;
  }
  tracer_.set_sink(owned_sink_.get());
  return true;
}

std::string env_string(const char* name) {
  const char* v = std::getenv(name);
  return v == nullptr ? std::string{} : std::string{v};
}

}  // namespace lazydram::telemetry
