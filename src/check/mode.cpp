#include "check/mode.hpp"

#include "common/assert.hpp"
#include "common/log.hpp"

namespace lazydram::check {

CheckMode parse_check_mode(const std::string& text) {
  if (text.empty() || text == "off") return CheckMode::kOff;
  if (text == "log") return CheckMode::kLog;
  if (text == "strict") return CheckMode::kStrict;
  log_warn("unknown check mode '%s' (want off|log|strict); checking disabled",
           text.c_str());
  return CheckMode::kOff;
}

const char* check_mode_name(CheckMode mode) {
  switch (mode) {
    case CheckMode::kOff: return "off";
    case CheckMode::kLog: return "log";
    case CheckMode::kStrict: return "strict";
  }
  LD_ASSERT_MSG(false, "unreachable");
  return "?";
}

}  // namespace lazydram::check
