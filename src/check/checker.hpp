// Runtime DRAM protocol checker: an independent observer of one channel's
// command stream.
//
// The checker re-derives every timing constraint from its own shadow copy of
// the bank state machines and channel-scope gates — it never consults the
// DramChannel's ledgers — so a bug in the optimized command engine (or a
// scheduler handing it an illegal request) is caught even though both sides
// implement the same GDDR5 rules. On top of pure timing it validates the
// scheduler-level invariants the lazy scheduler's correctness argument rests
// on:
//
//   * bank state machine: ACT only on a closed bank, PRE/RD/WR only on an
//     open one, RD/WR only to the open row;
//   * timing: tRCD, tRP, tRC, tRAS, tRRD, tCCD (bank + bank-group scope),
//     tCDLR, tWR, read-to-PRE burst drain, tFAW (when configured), data-bus
//     occupancy with the RD<->WR turnaround bubble, one command per channel
//     per cycle, one AMS drop per channel per cycle;
//   * policy: a PRE must never bypass a pending row-buffer hit (hit-first
//     schedulers only — DMS delays misses, never hits), an ACT must open a
//     row some pending request wants, AMS may only drop annotated
//     approximable global reads, a new row-group drop requires cumulative
//     coverage below the cap, and no request may starve past a configurable
//     age bound.
//
// Per CheckMode::kLog violation: recorded (up to max_recorded), counted,
// emitted as a telemetry kCheckViolation event and log_warn'ed. In kStrict
// the first violation throws ViolationError instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/mode.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "dram/channel.hpp"
#include "mem/pending_queue.hpp"
#include "mem/request.hpp"
#include "telemetry/trace.hpp"

namespace lazydram::check {

enum class ViolationKind : std::uint8_t {
  kBankState,        ///< Command illegal for the bank's open/closed state.
  kTRcd,             ///< RD/WR before ACT + tRCD.
  kTRp,              ///< ACT before PRE + tRP.
  kTRc,              ///< ACT before previous ACT + tRC.
  kTRas,             ///< PRE before ACT + tRAS.
  kTCcd,             ///< CAS before previous CAS + tCCD (bank or bank group).
  kTRrd,             ///< ACT before previous ACT (any bank) + tRRD.
  kTFaw,             ///< Fifth ACT inside a rolling tFAW window.
  kTWr,              ///< PRE before write recovery completed.
  kTCdlr,            ///< RD before write-to-read turnaround completed.
  kReadToPre,        ///< PRE before the open row's read burst drained.
  kBusConflict,      ///< Data burst overlaps the previous one (+ turnaround).
  kCommandBus,       ///< Two commands on one channel in one cycle.
  kDropBus,          ///< Two AMS drops on one channel in one cycle.
  kRowHitBypassed,   ///< PRE closed a row that still had a pending hit.
  kActWithoutWork,   ///< ACT opened a row no pending request wants.
  kDropNotApproximable,  ///< AMS dropped a write or a non-approximable read.
  kCoverageExceeded,     ///< New row-group drop at/above the coverage cap.
  kStarvation,           ///< A request aged past the starvation bound.
};

const char* violation_kind_name(ViolationKind kind);

struct Violation {
  ViolationKind kind = ViolationKind::kBankState;
  Cycle cycle = 0;
  ChannelId channel = 0;
  std::int32_t bank = -1;  ///< -1 when the violation has no bank scope.
  std::string detail;      ///< Human-readable context (cycles, bounds, ids).
};

struct CheckerOptions {
  CheckMode mode = CheckMode::kLog;
  /// The scheduler serves row hits before conflicting requests, so a PRE
  /// with a pending hit is a bug. Disable for plain FCFS, which legitimately
  /// closes rows that still have younger hits pending.
  bool hit_first = true;
  /// The scheme may drop reads at all (AMS enabled). When false any on_drop
  /// notification is a violation.
  bool ams_allowed = false;
  double coverage_cap = 0.10;
  /// Per-tenant coverage caps (resolved, i.e. inherit already applied).
  /// When non-empty a new row-group drop additionally requires the owning
  /// tenant's own coverage to be below its cap — the checker keeps shadow
  /// per-tenant counters with the same integer arithmetic as the AmsUnit.
  std::vector<double> tenant_coverage_caps;
  Cycle starvation_bound = kDefaultStarvationBound;
  std::size_t max_recorded = 32;  ///< Violations kept with full detail.
};

class ProtocolChecker {
 public:
  ProtocolChecker(const GpuConfig& cfg, ChannelId channel, const CheckerOptions& opts);

  /// Routes kCheckViolation events through `tracer` (nullable to detach).
  void set_tracer(telemetry::Tracer* tracer) { tracer_ = tracer; }

  // --- Observation hooks (called by MemoryController) ---

  /// A request entered the pending queue (already stamped with loc/cycle).
  void on_enqueue(const MemRequest& req, Cycle now);

  /// A DRAM command issued. `row` is the target row for ACT/RD/WR and
  /// ignored for PRE (the shadow open row is used). `queue` is the pending
  /// queue *before* the served request is removed.
  void on_command(dram::CommandKind kind, BankId bank, RowId row, Cycle now,
                  const PendingQueue& queue);

  /// AMS dropped `req` (still present in `queue` at the time of the call).
  void on_drop(const MemRequest& req, Cycle now, const PendingQueue& queue);

  /// Once per memory cycle: age/starvation scan (oldest request only).
  void on_tick(const PendingQueue& queue, Cycle now);

  /// First future cycle at which on_tick could do anything, assuming the
  /// queue does not change in between (enqueue/serve/drop are real events
  /// that end any skip anyway): the cycle the oldest request crosses the
  /// starvation bound, kNeverCycle if the queue is empty or the oldest has
  /// already been reported. Lets the event-wheel skip idle spans without
  /// suppressing a starvation report.
  Cycle next_tick_event(const PendingQueue& queue, Cycle now) const {
    const MemRequest* oldest = queue.oldest();
    if (oldest == nullptr) return kNeverCycle;
    if (have_starved_ && last_starved_ == oldest->id) return kNeverCycle;
    const Cycle fire = oldest->enqueue_cycle + opts_.starvation_bound + 1;
    return fire > now ? fire : now + 1;
  }

  // --- Results ---
  std::uint64_t commands_checked() const { return commands_checked_; }
  std::uint64_t violation_count() const { return violation_count_; }
  const std::vector<Violation>& violations() const { return violations_; }
  const CheckerOptions& options() const { return opts_; }
  ChannelId channel() const { return channel_; }

  /// Active-state residency of `bank` as of cycle `end`, derived purely from
  /// the checker's shadow open/close transitions. An independent witness for
  /// the power accountant's residencies: the two track the same command
  /// stream through disjoint state machines, so tests can cross-check them
  /// (see PowerAccounting.ResidenciesMatchCheckerShadow).
  std::uint64_t shadow_active_cycles(BankId bank, Cycle end) const;

 private:
  /// Shadow per-bank timing ledger, split per constraint so a violation can
  /// name the exact rule it broke. Update rules mirror dram::Bank exactly
  /// (running max semantics included).
  struct ShadowBank {
    RowId open_row = kInvalidRow;
    Cycle open_since = 0;               ///< ACT cycle of the current open row.
    std::uint64_t active_cycles = 0;    ///< Closed open-row residency.
    Cycle act_after_rc = 0;    ///< Last ACT + tRC.
    Cycle act_after_rp = 0;    ///< Last PRE + tRP.
    Cycle pre_after_ras = 0;   ///< Last ACT + tRAS.
    Cycle pre_after_rtp = 0;   ///< Last RD + tBURST (burst drain).
    Cycle pre_after_wr = 0;    ///< Last WR data end + tWR (write recovery).
    Cycle cas_after_rcd = 0;   ///< Last ACT + tRCD.
    Cycle cas_after_ccd = 0;   ///< Last CAS + tCCD (bank scope).
    Cycle rd_after_cdlr = 0;   ///< Last WR data end + tCDLR.
  };

  void check_activate(ShadowBank& b, BankId bank, RowId row, Cycle now,
                      const PendingQueue& queue);
  void check_precharge(ShadowBank& b, BankId bank, Cycle now, const PendingQueue& queue);
  void check_cas(ShadowBank& b, dram::CommandKind kind, BankId bank, RowId row,
                 Cycle now);

  void report(ViolationKind kind, Cycle cycle, std::int32_t bank, std::string detail);

  DramTiming t_;
  ChannelId channel_;
  unsigned groups_;
  CheckerOptions opts_;

  std::vector<ShadowBank> banks_;

  // Channel-scope shadow gates (mirror dram::DramChannel).
  Cycle act_after_rrd_ = 0;
  std::vector<Cycle> group_cas_;
  Cycle bus_free_at_ = 0;
  bool last_burst_was_write_ = false;

  // tFAW: rolling window of the last four ACT cycles (only when tFAW > 0).
  Cycle act_ring_[4] = {0, 0, 0, 0};
  unsigned act_ring_pos_ = 0;
  unsigned acts_in_ring_ = 0;

  // One-command-per-cycle / one-drop-per-cycle tracking.
  bool have_command_ = false;
  Cycle last_command_cycle_ = 0;
  bool have_drop_ = false;
  Cycle last_drop_cycle_ = 0;

  // AMS coverage shadow accounting (mirrors AmsUnit's integer counters, so
  // the coverage comparison is arithmetically identical to should_drop's).
  std::uint64_t reads_received_ = 0;
  std::uint64_t reads_dropped_ = 0;
  // Per-tenant shadow counters (sized from opts_.tenant_coverage_caps).
  std::vector<std::uint64_t> tenant_reads_received_;
  std::vector<std::uint64_t> tenant_reads_dropped_;
  /// Row a bank is currently draining (continuation drops of an admitted
  /// group are exempt from the new-group coverage pre-check).
  std::vector<RowId> drain_row_;

  // Starvation: report each wedged request once.
  bool have_starved_ = false;
  RequestId last_starved_ = 0;

  std::uint64_t commands_checked_ = 0;
  std::uint64_t violation_count_ = 0;
  std::vector<Violation> violations_;
  unsigned logged_ = 0;

  telemetry::Tracer* tracer_ = nullptr;
};

}  // namespace lazydram::check
