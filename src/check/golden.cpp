#include "check/golden.hpp"

#include <algorithm>
#include <vector>

namespace lazydram::check {

namespace {

constexpr Cycle kTurnaround = 2;  ///< RD<->WR bubble, mirrors dram/channel.cpp.

/// A pending request in the golden model's arrival-ordered queue.
struct GoldenReq {
  RequestId id = 0;
  BankId bank = 0;
  RowId row = kInvalidRow;
  Cycle enqueue = 0;
  bool is_read = true;
  TenantId tenant = 0;
};

/// Per-rule timing bounds (running max, like the checker's shadow ledger).
struct GoldenBank {
  RowId open_row = kInvalidRow;
  Cycle act_after_rc = 0;
  Cycle act_after_rp = 0;
  Cycle pre_after_ras = 0;
  Cycle pre_after_rtp = 0;
  Cycle pre_after_wr = 0;
  Cycle cas_after_rcd = 0;
  Cycle cas_after_ccd = 0;
  Cycle rd_after_cdlr = 0;
};

const GoldenReq* oldest_for_row(const std::vector<GoldenReq>& pending, BankId bank,
                                RowId row) {
  for (const GoldenReq& r : pending)
    if (r.bank == bank && r.row == row) return &r;
  return nullptr;
}

const GoldenReq* oldest_for_bank(const std::vector<GoldenReq>& pending, BankId bank) {
  for (const GoldenReq& r : pending)
    if (r.bank == bank) return &r;
  return nullptr;
}

void erase_id(std::vector<GoldenReq>& pending, RequestId id) {
  for (auto it = pending.begin(); it != pending.end(); ++it) {
    if (it->id == id) {
      pending.erase(it);
      return;
    }
  }
}

}  // namespace

GoldenTimeline golden_replay(const ChannelRecording& rec, const GpuConfig& cfg) {
  const DramTiming& t = cfg.timing;
  const unsigned num_banks = cfg.banks_per_channel;
  const unsigned groups = cfg.bank_groups_per_channel;

  GoldenTimeline out;

  // Arrivals are recorded in icnt delivery order; sort defensively by
  // enqueue stamp (stable: ties keep delivery order, which is the order the
  // pending queue sees).
  std::vector<RecordedArrival> arrivals = rec.arrivals;
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const RecordedArrival& a, const RecordedArrival& b) {
                     return a.enqueue_cycle < b.enqueue_cycle;
                   });

  std::vector<GoldenReq> pending;
  pending.reserve(cfg.pending_queue_size);
  std::vector<GoldenBank> banks(num_banks);
  std::vector<Cycle> group_cas(groups, 0);
  Cycle act_after_rrd = 0;
  Cycle act_ring[4] = {0, 0, 0, 0};
  unsigned act_ring_pos = 0;
  unsigned acts_in_ring = 0;
  Cycle bus_free_at = 0;
  bool last_burst_was_write = false;
  unsigned rr_bank = 0;
  Cycle cur_delay = 0;

  // Per-tenant DMS delay cap: the run clamps the scheduler's delay to each
  // tenant's QoS cap, so replay must gate with the same effective value.
  const auto effective_delay = [&rec, &cur_delay](TenantId tenant) {
    if (tenant < rec.tenant_delay_caps.size())
      return std::min(cur_delay, rec.tenant_delay_caps[tenant]);
    return cur_delay;
  };

  std::size_t next_arrival = 0;
  std::size_t next_drop = 0;
  std::size_t next_gate = 0;
  std::size_t next_delay = 0;

  // Generous wedge guard: the recorded run finished, so the golden replay
  // must drain well before this (a stuck replay means a divergence so large
  // the streams no longer line up).
  const Cycle cap = rec.last_cycle + 2'000'000;

  std::vector<BankId> gated;  // Banks drop-gated this cycle.

  for (Cycle now = 0;; ++now) {
    if (now > cap) {
      out.completed = false;
      break;
    }

    // Arrivals become schedulable the cycle after their enqueue stamp (see
    // recorder.hpp).
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].enqueue_cycle < now) {
      const RecordedArrival& a = arrivals[next_arrival++];
      pending.push_back(
          GoldenReq{a.id, a.bank, a.row, a.enqueue_cycle, a.is_read, a.tenant});
    }
    if (pending.empty() && next_arrival == arrivals.size()) {
      out.end_cycle = now;
      break;
    }

    // The scheduler updates its DMS delay at tick(now), before any decision
    // of the same cycle.
    while (next_delay < rec.delay_changes.size() &&
           rec.delay_changes[next_delay].cycle <= now)
      cur_delay = rec.delay_changes[next_delay++].delay;

    // Drop pass: replay recorded AMS drops (the drop pass precedes the
    // command pass in MemoryController::tick).
    while (next_drop < rec.drops.size() && rec.drops[next_drop].cycle == now) {
      const RecordedDrop& d = rec.drops[next_drop++];
      erase_id(pending, d.id);
      if (out.entries.find(d.id) == out.entries.end())
        out.entries[d.id] = GoldenEntry{GoldenOutcome::kDropped, 0, 0, now};
    }

    gated.clear();
    while (next_gate < rec.drop_gates.size() && rec.drop_gates[next_gate].cycle == now)
      gated.push_back(rec.drop_gates[next_gate++].bank);

    // Command pass: round-robin over banks, first legal command wins.
    for (unsigned i = 0; i < num_banks; ++i) {
      const BankId b = (rr_bank + i) % num_banks;
      if (std::find(gated.begin(), gated.end(), b) != gated.end()) continue;
      GoldenBank& bank = banks[b];

      // FR-FCFS selection: oldest row-buffer hit first, else the bank's
      // oldest request, age-gated by the replayed DMS delay (hits only under
      // the delay-all ablation).
      const GoldenReq* cand = nullptr;
      bool is_hit = false;
      if (bank.open_row != kInvalidRow) {
        cand = oldest_for_row(pending, b, bank.open_row);
        if (cand != nullptr) is_hit = true;
      }
      if (is_hit) {
        if (rec.dms_delay_row_hits && rec.dms_enabled &&
            now - cand->enqueue < effective_delay(cand->tenant))
          continue;  // Gated hit: the bank idles.
      } else {
        cand = oldest_for_bank(pending, b);
        if (cand == nullptr) continue;
        if (rec.dms_enabled && now - cand->enqueue < effective_delay(cand->tenant))
          continue;
      }

      if (bank.open_row == cand->row) {
        // CAS.
        const bool is_write = !cand->is_read;
        Cycle ready = std::max(bank.cas_after_rcd, bank.cas_after_ccd);
        ready = std::max(ready, group_cas[b % groups]);
        if (!is_write) ready = std::max(ready, bank.rd_after_cdlr);
        if (now < ready) continue;
        const Cycle data_start = now + (is_write ? t.tWL : t.tCL);
        const Cycle needed =
            bus_free_at + (is_write != last_burst_was_write ? kTurnaround : 0);
        if (data_start < needed) continue;

        const Cycle data_end = data_start + t.tBURST;
        bank.cas_after_ccd = std::max(bank.cas_after_ccd, now + t.tCCD);
        if (is_write) {
          bank.rd_after_cdlr = std::max(bank.rd_after_cdlr, data_end + t.tCDLR);
          bank.pre_after_wr = std::max(bank.pre_after_wr, data_end + t.tWR);
        } else {
          bank.pre_after_rtp = std::max(bank.pre_after_rtp, now + t.tBURST);
        }
        group_cas[b % groups] = now + t.tCCD;
        bus_free_at = data_end;
        last_burst_was_write = is_write;

        out.entries[cand->id] = GoldenEntry{GoldenOutcome::kServed, now, data_end, 0};
        erase_id(pending, cand->id);
        rr_bank = (b + 1) % num_banks;
        break;
      }

      if (bank.open_row != kInvalidRow) {
        // Demand precharge for a row-miss candidate.
        const Cycle ready = std::max(
            {bank.pre_after_ras, bank.pre_after_rtp, bank.pre_after_wr});
        if (now < ready) continue;
        bank.open_row = kInvalidRow;
        bank.act_after_rp = std::max(bank.act_after_rp, now + t.tRP);
        rr_bank = (b + 1) % num_banks;
        break;
      }

      // Activate.
      Cycle ready = std::max({bank.act_after_rc, bank.act_after_rp, act_after_rrd});
      if (t.tFAW > 0 && acts_in_ring >= 4)
        ready = std::max(ready, act_ring[act_ring_pos] + t.tFAW);
      if (now < ready) continue;
      bank.open_row = cand->row;
      bank.cas_after_rcd = std::max(bank.cas_after_rcd, now + t.tRCD);
      bank.pre_after_ras = std::max(bank.pre_after_ras, now + t.tRAS);
      bank.act_after_rc = std::max(bank.act_after_rc, now + t.tRC);
      act_after_rrd = std::max(act_after_rrd, now + t.tRRD);
      act_ring[act_ring_pos] = now;
      act_ring_pos = (act_ring_pos + 1) % 4;
      if (acts_in_ring < 4) ++acts_in_ring;
      rr_bank = (b + 1) % num_banks;
      break;
    }
  }

  return out;
}

}  // namespace lazydram::check
