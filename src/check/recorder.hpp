// Per-channel request-stream recorder for differential replay.
//
// The recorder captures exactly what the golden model needs to reproduce a
// channel's timeline:
//   * every arrival (coordinates + enqueue cycle + kind/approximability),
//   * every AMS drop and every drop-gate (a cycle where a bank's command-pass
//     decision was "drop", which in the optimized engine blocks that bank's
//     command for the cycle),
//   * the DMS delay timeline (the gate value can change every profiling
//     window under Dyn-DMS, so it is recorded as a change list),
//   * the observed per-request serve timeline (CAS + data-done cycles) that
//     the golden model's output is diffed against.
//
// Policy *decisions* (drops, delay values) are recorded as inputs rather than
// re-derived: adaptive policies depend on profiling state the golden model
// deliberately does not re-implement. What the golden model does re-derive —
// and therefore verifies — is all FR-FCFS selection and all bank/bus timing.
//
// Caveat: replay assumes arrivals become schedulable the cycle *after* their
// enqueue stamp, which holds for GpuTop-driven runs (the icnt delivers
// requests after mc->tick(t)). Direct-drive unit harnesses that enqueue at
// cycle t before ticking t violate this; use the checker there, not the
// golden model.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "core/scheme.hpp"
#include "mem/request.hpp"

namespace lazydram::check {

struct RecordedArrival {
  RequestId id = 0;
  BankId bank = 0;
  RowId row = kInvalidRow;
  Cycle enqueue_cycle = 0;
  bool is_read = true;
  bool approximable = false;
  TenantId tenant = 0;  ///< Owning client (selects the replayed delay cap).
};

struct RecordedServe {
  RequestId id = 0;
  Cycle cas_cycle = 0;   ///< Cycle the RD/WR command issued.
  Cycle done_cycle = 0;  ///< Cycle the data burst completed.
};

struct RecordedDrop {
  RequestId id = 0;
  Cycle cycle = 0;
};

/// A command-pass cycle where the scheduler answered kDrop for `bank`: the
/// bank issues no command that cycle (the drop itself happened in the drop
/// pass, at most once per cycle).
struct RecordedGate {
  Cycle cycle = 0;
  BankId bank = 0;
};

struct RecordedDelay {
  Cycle cycle = 0;  ///< First cycle the new value applies.
  Cycle delay = 0;
};

struct ChannelRecording {
  ChannelId channel = 0;
  bool dms_enabled = false;
  bool dms_delay_row_hits = false;
  /// Per-tenant DMS delay caps (kNeverCycle = uncapped); empty in
  /// single-tenant runs. Replay applies min(recorded delay, cap[tenant]).
  std::vector<Cycle> tenant_delay_caps;

  std::vector<RecordedArrival> arrivals;  ///< Arrival order.
  std::vector<RecordedServe> serves;
  std::vector<RecordedDrop> drops;
  std::vector<RecordedGate> drop_gates;
  std::vector<RecordedDelay> delay_changes;  ///< Deduplicated change list.
  Cycle last_cycle = 0;  ///< Latest cycle any event was observed at.
};

class ChannelRecorder {
 public:
  explicit ChannelRecorder(ChannelId channel) { rec_.channel = channel; }

  /// Captures the policy knobs replay must honor (DMS gating of misses, and
  /// of hits under the ablation).
  void set_spec(const core::SchemeSpec& spec) {
    rec_.dms_enabled = spec.dms_enabled;
    rec_.dms_delay_row_hits = spec.dms_delay_row_hits;
  }

  /// Captures the per-tenant DMS delay caps the run applies (resolved from
  /// SchemeParams::tenant_qos); replay clamps the recorded delay per tenant.
  void set_tenant_delay_caps(std::vector<Cycle> caps) {
    rec_.tenant_delay_caps = std::move(caps);
  }

  void on_enqueue(const MemRequest& req) {
    rec_.arrivals.push_back(RecordedArrival{req.id, req.loc.bank, req.loc.row,
                                            req.enqueue_cycle, req.is_read(),
                                            req.approximable, req.tenant});
    bump(req.enqueue_cycle);
  }

  void on_serve(RequestId id, Cycle cas_cycle, Cycle done_cycle) {
    rec_.serves.push_back(RecordedServe{id, cas_cycle, done_cycle});
    bump(done_cycle);
  }

  void on_drop(RequestId id, Cycle cycle) {
    rec_.drops.push_back(RecordedDrop{id, cycle});
    bump(cycle);
  }

  void on_drop_gate(BankId bank, Cycle cycle) {
    rec_.drop_gates.push_back(RecordedGate{cycle, bank});
    bump(cycle);
  }

  /// Called every tick with the scheduler's current DMS delay gauge; only
  /// value changes are stored.
  void on_delay(Cycle cycle, Cycle delay) {
    if (rec_.delay_changes.empty() || rec_.delay_changes.back().delay != delay)
      rec_.delay_changes.push_back(RecordedDelay{cycle, delay});
  }

  const ChannelRecording& recording() const { return rec_; }

 private:
  void bump(Cycle c) { rec_.last_cycle = std::max(rec_.last_cycle, c); }

  ChannelRecording rec_;
};

}  // namespace lazydram::check
