#include "check/checker.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "telemetry/flight.hpp"

namespace lazydram::check {

namespace {

/// Mirrors the RD<->WR turnaround bubble in dram/channel.cpp. Kept as an
/// independent constant on purpose: the checker must not read the engine's
/// ledgers or share its helpers.
constexpr Cycle kTurnaround = 2;

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

}  // namespace

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kBankState: return "bank_state";
    case ViolationKind::kTRcd: return "tRCD";
    case ViolationKind::kTRp: return "tRP";
    case ViolationKind::kTRc: return "tRC";
    case ViolationKind::kTRas: return "tRAS";
    case ViolationKind::kTCcd: return "tCCD";
    case ViolationKind::kTRrd: return "tRRD";
    case ViolationKind::kTFaw: return "tFAW";
    case ViolationKind::kTWr: return "tWR";
    case ViolationKind::kTCdlr: return "tCDLR";
    case ViolationKind::kReadToPre: return "read_to_pre";
    case ViolationKind::kBusConflict: return "bus_conflict";
    case ViolationKind::kCommandBus: return "command_bus";
    case ViolationKind::kDropBus: return "drop_bus";
    case ViolationKind::kRowHitBypassed: return "row_hit_bypassed";
    case ViolationKind::kActWithoutWork: return "act_without_work";
    case ViolationKind::kDropNotApproximable: return "drop_not_approximable";
    case ViolationKind::kCoverageExceeded: return "coverage_exceeded";
    case ViolationKind::kStarvation: return "starvation";
  }
  LD_ASSERT_MSG(false, "unreachable");
  return "?";
}

ProtocolChecker::ProtocolChecker(const GpuConfig& cfg, ChannelId channel,
                                 const CheckerOptions& opts)
    : t_(cfg.timing),
      channel_(channel),
      groups_(cfg.bank_groups_per_channel),
      opts_(opts),
      banks_(cfg.banks_per_channel),
      group_cas_(cfg.bank_groups_per_channel, 0),
      tenant_reads_received_(opts.tenant_coverage_caps.size(), 0),
      tenant_reads_dropped_(opts.tenant_coverage_caps.size(), 0),
      drain_row_(cfg.banks_per_channel, kInvalidRow) {}

void ProtocolChecker::report(ViolationKind kind, Cycle cycle, std::int32_t bank,
                             std::string detail) {
  ++violation_count_;
  if (violations_.size() < opts_.max_recorded)
    violations_.push_back(Violation{kind, cycle, channel_, bank, detail});
  if (tracer_ != nullptr)
    tracer_->check_violation(cycle, channel_, bank, static_cast<unsigned>(kind));

  const std::string msg =
      fmt("protocol check [%s] ch%u bank %d cycle %" PRIu64 ": %s",
          violation_kind_name(kind), channel_, bank, cycle, detail.c_str());
  if (opts_.mode == CheckMode::kStrict) {
    // Leave forensics before unwinding: the flight rings already hold the
    // violation event (check_violation above) plus the last-K context. In a
    // parallel epoch this is deferred and re-issued at the deterministic
    // rethrow point after the capture drain (GpuTop::run_mem_span_parallel).
    telemetry::FlightRecorder::dump_all("protocol_violation", msg);
    throw ViolationError(msg);
  }
  // Log mode: surface the first few, count the rest (a systematic bug would
  // otherwise flood stderr at one warning per memory cycle).
  if (logged_ < 16) {
    ++logged_;
    log_warn("%s%s", msg.c_str(),
             logged_ == 16 ? " (further violations counted, not logged)" : "");
  }
}

void ProtocolChecker::on_enqueue(const MemRequest& req, Cycle now) {
  (void)now;
  // Mirrors LazyScheduler::on_enqueue -> AmsUnit::on_read_received, so the
  // coverage comparison below uses arithmetically identical counters.
  if (req.is_read()) {
    ++reads_received_;
    if (req.tenant < tenant_reads_received_.size()) ++tenant_reads_received_[req.tenant];
  }
  // A non-approximable request (write *or* precise read) joining a draining
  // row group ends the drain: from here on, drops to this row need the full
  // new-group criteria again.
  if (!(req.is_read() && req.approximable) &&
      drain_row_[req.loc.bank] == req.loc.row)
    drain_row_[req.loc.bank] = kInvalidRow;
}

void ProtocolChecker::check_activate(ShadowBank& b, BankId bank, RowId row, Cycle now,
                                     const PendingQueue& queue) {
  const auto sbank = static_cast<std::int32_t>(bank);
  if (b.open_row != kInvalidRow)
    report(ViolationKind::kBankState, now, sbank,
           fmt("ACT while row %" PRIu64 " is open", b.open_row));
  if (now < b.act_after_rc)
    report(ViolationKind::kTRc, now, sbank,
           fmt("ACT at %" PRIu64 " < tRC bound %" PRIu64, now, b.act_after_rc));
  if (now < b.act_after_rp)
    report(ViolationKind::kTRp, now, sbank,
           fmt("ACT at %" PRIu64 " < tRP bound %" PRIu64, now, b.act_after_rp));
  if (now < act_after_rrd_)
    report(ViolationKind::kTRrd, now, sbank,
           fmt("ACT at %" PRIu64 " < tRRD bound %" PRIu64, now, act_after_rrd_));
  if (t_.tFAW > 0 && acts_in_ring_ >= 4) {
    const Cycle oldest = act_ring_[act_ring_pos_];
    if (now < oldest + t_.tFAW)
      report(ViolationKind::kTFaw, now, sbank,
             fmt("fifth ACT at %" PRIu64 " inside tFAW window starting %" PRIu64, now,
                 oldest));
  }
  if (queue.oldest_for_row(bank, row) == nullptr)
    report(ViolationKind::kActWithoutWork, now, sbank,
           fmt("ACT opened row %" PRIu64 " with no pending request for it", row));

  b.open_row = row;
  b.open_since = now;
  b.cas_after_rcd = std::max(b.cas_after_rcd, now + t_.tRCD);
  b.pre_after_ras = std::max(b.pre_after_ras, now + t_.tRAS);
  b.act_after_rc = std::max(b.act_after_rc, now + t_.tRC);
  act_after_rrd_ = std::max(act_after_rrd_, now + t_.tRRD);
  act_ring_[act_ring_pos_] = now;
  act_ring_pos_ = (act_ring_pos_ + 1) % 4;
  if (acts_in_ring_ < 4) ++acts_in_ring_;
}

void ProtocolChecker::check_precharge(ShadowBank& b, BankId bank, Cycle now,
                                      const PendingQueue& queue) {
  const auto sbank = static_cast<std::int32_t>(bank);
  if (b.open_row == kInvalidRow) {
    report(ViolationKind::kBankState, now, sbank, "PRE on a closed bank");
  } else {
    if (now < b.pre_after_ras)
      report(ViolationKind::kTRas, now, sbank,
             fmt("PRE at %" PRIu64 " < tRAS bound %" PRIu64, now, b.pre_after_ras));
    if (now < b.pre_after_rtp)
      report(ViolationKind::kReadToPre, now, sbank,
             fmt("PRE at %" PRIu64 " before read burst drained (bound %" PRIu64 ")", now,
                 b.pre_after_rtp));
    if (now < b.pre_after_wr)
      report(ViolationKind::kTWr, now, sbank,
             fmt("PRE at %" PRIu64 " < tWR bound %" PRIu64, now, b.pre_after_wr));
    if (opts_.hit_first && queue.oldest_for_row(bank, b.open_row) != nullptr)
      report(ViolationKind::kRowHitBypassed, now, sbank,
             fmt("PRE closed row %" PRIu64 " with request %" PRIu64 " pending for it",
                 b.open_row, queue.oldest_for_row(bank, b.open_row)->id));
  }
  if (b.open_row != kInvalidRow) b.active_cycles += now - b.open_since;
  b.open_row = kInvalidRow;
  b.act_after_rp = std::max(b.act_after_rp, now + t_.tRP);
}

std::uint64_t ProtocolChecker::shadow_active_cycles(BankId bank, Cycle end) const {
  const ShadowBank& b = banks_[bank];
  if (b.open_row == kInvalidRow) return b.active_cycles;
  return b.active_cycles + (end - b.open_since);
}

void ProtocolChecker::check_cas(ShadowBank& b, dram::CommandKind kind, BankId bank,
                                RowId row, Cycle now) {
  const auto sbank = static_cast<std::int32_t>(bank);
  const bool is_write = kind == dram::CommandKind::kWrite;
  const char* name = is_write ? "WR" : "RD";

  if (b.open_row == kInvalidRow)
    report(ViolationKind::kBankState, now, sbank, fmt("%s on a closed bank", name));
  else if (b.open_row != row)
    report(ViolationKind::kBankState, now, sbank,
           fmt("%s to row %" PRIu64 " while row %" PRIu64 " is open", name, row,
               b.open_row));
  if (now < b.cas_after_rcd)
    report(ViolationKind::kTRcd, now, sbank,
           fmt("%s at %" PRIu64 " < tRCD bound %" PRIu64, name, now, b.cas_after_rcd));
  if (now < b.cas_after_ccd)
    report(ViolationKind::kTCcd, now, sbank,
           fmt("%s at %" PRIu64 " < bank tCCD bound %" PRIu64, name, now,
               b.cas_after_ccd));
  if (!is_write && now < b.rd_after_cdlr)
    report(ViolationKind::kTCdlr, now, sbank,
           fmt("RD at %" PRIu64 " < tCDLR bound %" PRIu64, now, b.rd_after_cdlr));
  const unsigned group = bank % groups_;
  if (now < group_cas_[group])
    report(ViolationKind::kTCcd, now, sbank,
           fmt("%s at %" PRIu64 " < group %u tCCD bound %" PRIu64, name, now, group,
               group_cas_[group]));

  const Cycle data_start = now + (is_write ? t_.tWL : t_.tCL);
  const Cycle needed =
      bus_free_at_ + (is_write != last_burst_was_write_ ? kTurnaround : 0);
  if (data_start < needed)
    report(ViolationKind::kBusConflict, now, sbank,
           fmt("%s data burst starts at %" PRIu64 " but the bus is busy until %" PRIu64,
               name, data_start, needed));

  const Cycle data_end = data_start + t_.tBURST;
  b.cas_after_ccd = std::max(b.cas_after_ccd, now + t_.tCCD);
  if (is_write) {
    b.rd_after_cdlr = std::max(b.rd_after_cdlr, data_end + t_.tCDLR);
    b.pre_after_wr = std::max(b.pre_after_wr, data_end + t_.tWR);
  } else {
    b.pre_after_rtp = std::max(b.pre_after_rtp, now + t_.tBURST);
  }
  group_cas_[group] = now + t_.tCCD;
  bus_free_at_ = data_end;
  last_burst_was_write_ = is_write;
}

void ProtocolChecker::on_command(dram::CommandKind kind, BankId bank, RowId row,
                                 Cycle now, const PendingQueue& queue) {
  ++commands_checked_;
  LD_ASSERT(bank < banks_.size());

  // Shared command bus: at most one command per channel per memory cycle,
  // at non-decreasing cycles.
  if (have_command_) {
    if (now < last_command_cycle_)
      report(ViolationKind::kCommandBus, now, static_cast<std::int32_t>(bank),
             fmt("command at %" PRIu64 " after one at %" PRIu64, now,
                 last_command_cycle_));
    else if (now == last_command_cycle_)
      report(ViolationKind::kCommandBus, now, static_cast<std::int32_t>(bank),
             "second command in one cycle");
  }
  have_command_ = true;
  last_command_cycle_ = now;

  // Any command to a bank means its AMS drain is over (the scheduler never
  // serves a bank mid-drain).
  drain_row_[bank] = kInvalidRow;

  ShadowBank& b = banks_[bank];
  switch (kind) {
    case dram::CommandKind::kActivate:
      check_activate(b, bank, row, now, queue);
      break;
    case dram::CommandKind::kPrecharge:
      check_precharge(b, bank, now, queue);
      break;
    case dram::CommandKind::kRead:
    case dram::CommandKind::kWrite:
      check_cas(b, kind, bank, row, now);
      break;
  }
}

void ProtocolChecker::on_drop(const MemRequest& req, Cycle now,
                              const PendingQueue& queue) {
  const BankId bank = req.loc.bank;
  const RowId row = req.loc.row;
  const auto sbank = static_cast<std::int32_t>(bank);

  if (!opts_.ams_allowed)
    report(ViolationKind::kDropNotApproximable, now, sbank,
           fmt("request %" PRIu64 " dropped by a scheme without AMS", req.id));
  if (!req.is_read() || !req.approximable)
    report(ViolationKind::kDropNotApproximable, now, sbank,
           fmt("dropped request %" PRIu64 " is %s", req.id,
               req.is_read() ? "a non-approximable read" : "a write"));

  // One drop per channel per cycle (drops use the reply path, not the DRAM
  // command bus, so a drop and a command may share a cycle — but never two
  // drops).
  if (have_drop_ && now == last_drop_cycle_)
    report(ViolationKind::kDropBus, now, sbank, "second drop in one cycle");
  have_drop_ = true;
  last_drop_cycle_ = now;

  const bool continuation = drain_row_[bank] == row;
  if (!continuation) {
    // New row-group drop: the cumulative coverage must be strictly below the
    // cap *before* this drop counts (AmsUnit::should_drop refuses at >=).
    const double coverage =
        reads_received_ == 0 ? 0.0
                             : static_cast<double>(reads_dropped_) /
                                   static_cast<double>(reads_received_);
    if (coverage >= opts_.coverage_cap)
      report(ViolationKind::kCoverageExceeded, now, sbank,
             fmt("new group drop at coverage %.4f >= cap %.4f (%" PRIu64 "/%" PRIu64 ")",
                 coverage, opts_.coverage_cap, reads_dropped_, reads_received_));
    // Per-tenant budget: the owning tenant's own coverage must also be below
    // its cap (mirrors AmsUnit::should_drop's tenant check exactly).
    if (req.tenant < opts_.tenant_coverage_caps.size()) {
      const std::uint64_t t_reads = tenant_reads_received_[req.tenant];
      const std::uint64_t t_drops = tenant_reads_dropped_[req.tenant];
      const double t_coverage =
          t_reads == 0 ? 0.0
                       : static_cast<double>(t_drops) / static_cast<double>(t_reads);
      if (t_coverage >= opts_.tenant_coverage_caps[req.tenant])
        report(ViolationKind::kCoverageExceeded, now, sbank,
               fmt("new group drop for tenant %u at its coverage %.4f >= cap %.4f "
                   "(%" PRIu64 "/%" PRIu64 ")",
                   req.tenant, t_coverage, opts_.tenant_coverage_caps[req.tenant],
                   t_drops, t_reads));
    }
    // The group is admitted as a whole, so it must be entirely approximable
    // reads at admission time.
    if (!queue.row_group_all_approximable(bank, row))
      report(ViolationKind::kDropNotApproximable, now, sbank,
             fmt("row %" PRIu64 " admitted for dropping with non-approximable members",
                 row));
  }

  (void)queue;
  ++reads_dropped_;
  if (req.tenant < tenant_reads_dropped_.size()) ++tenant_reads_dropped_[req.tenant];
  // The drain stays armed even when this drop empties the group: the
  // scheduler clears its drain state lazily (only when decide() next runs
  // for the bank and finds nothing left), so an approximable read arriving
  // for this row in the meantime re-enters the drain as a continuation.
  // We clear on the same observable events the scheduler's lazy clearing
  // implies: a command to the bank, or a non-approximable enqueue to the row.
  drain_row_[bank] = row;
}

void ProtocolChecker::on_tick(const PendingQueue& queue, Cycle now) {
  const MemRequest* oldest = queue.oldest();
  if (oldest == nullptr) return;
  if (now - oldest->enqueue_cycle <= opts_.starvation_bound) return;
  if (have_starved_ && last_starved_ == oldest->id) return;  // Report once.
  have_starved_ = true;
  last_starved_ = oldest->id;
  report(ViolationKind::kStarvation, now, static_cast<std::int32_t>(oldest->loc.bank),
         fmt("request %" PRIu64 " enqueued at %" PRIu64 " still pending after %" PRIu64
             " cycles (bound %" PRIu64 ")",
             oldest->id, oldest->enqueue_cycle, now - oldest->enqueue_cycle,
             opts_.starvation_bound));
}

}  // namespace lazydram::check
