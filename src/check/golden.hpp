// Golden reference model: a deliberately simple, obviously-correct
// re-implementation of FR-FCFS + GDDR5 bank timing that replays one
// channel's recorded request stream and produces a canonical per-request
// timeline.
//
// What it re-derives (and therefore independently verifies):
//   * FR-FCFS selection — oldest row-buffer hit first, else the bank's
//     oldest request — over a plain arrival-ordered vector (linear scans, no
//     per-bank indices, no open-row caches);
//   * the full bank state machine and every timing constraint (tRCD, tRP,
//     tRC, tRAS, tRRD, tCCD bank + group scope, tCDLR, tWR, tFAW, data-bus
//     occupancy with turnaround), tracked as per-rule bounds instead of the
//     engine's folded next_* ledgers;
//   * the round-robin command pass (one command per cycle, first legal bank
//     wins, round-robin pointer advances past it).
//
// What it replays as recorded inputs (policy decisions that depend on
// profiling state the golden model intentionally does not model): AMS drops
// (by cycle), command-pass drop gates, and the DMS delay timeline. DMS age
// *gating* itself is re-derived from the replayed delay value.
#pragma once

#include <unordered_map>

#include "check/recorder.hpp"
#include "common/config.hpp"
#include "common/types.hpp"

namespace lazydram::check {

enum class GoldenOutcome : std::uint8_t { kServed, kDropped };

struct GoldenEntry {
  GoldenOutcome outcome = GoldenOutcome::kServed;
  Cycle cas_cycle = 0;   ///< RD/WR issue cycle (served only).
  Cycle done_cycle = 0;  ///< Data-burst completion cycle (served only).
  Cycle drop_cycle = 0;  ///< Drop cycle (dropped only).
};

struct GoldenTimeline {
  /// False if replay hit the safety cap without draining the queue (a wedge
  /// or a divergence so large the streams no longer line up).
  bool completed = true;
  Cycle end_cycle = 0;
  std::unordered_map<RequestId, GoldenEntry> entries;
};

/// Replays `rec` against `cfg`'s timing and returns the canonical timeline.
GoldenTimeline golden_replay(const ChannelRecording& rec, const GpuConfig& cfg);

}  // namespace lazydram::check
