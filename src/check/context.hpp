// Per-run verification context: owns the per-channel protocol checkers and
// stream recorders a GpuTop wires into its memory controllers. Kept separate
// from GpuTop so callers (simulator, sweep engine, DiffHarness, tests) can
// inspect checker results and recordings after the run.
#pragma once

#include <memory>
#include <vector>

#include "check/checker.hpp"
#include "check/mode.hpp"
#include "check/recorder.hpp"
#include "common/config.hpp"
#include "common/types.hpp"

namespace lazydram::check {

struct CheckConfig {
  CheckMode mode = CheckMode::kOff;
  /// Record per-channel request streams for golden-model replay.
  bool record = false;
  Cycle starvation_bound = kDefaultStarvationBound;
};

class CheckContext {
 public:
  explicit CheckContext(const CheckConfig& config) : config_(config) {}

  const CheckConfig& config() const { return config_; }

  /// True if the context wants any hook installed at all.
  bool active() const { return config_.mode != CheckMode::kOff || config_.record; }

  ProtocolChecker* add_checker(const GpuConfig& cfg, ChannelId channel,
                               const CheckerOptions& opts) {
    if (checkers_.size() <= channel) checkers_.resize(channel + 1);
    checkers_[channel] = std::make_unique<ProtocolChecker>(cfg, channel, opts);
    return checkers_[channel].get();
  }

  ChannelRecorder* add_recorder(ChannelId channel) {
    if (recorders_.size() <= channel) recorders_.resize(channel + 1);
    recorders_[channel] = std::make_unique<ChannelRecorder>(channel);
    return recorders_[channel].get();
  }

  ProtocolChecker* checker(ChannelId channel) const {
    return channel < checkers_.size() ? checkers_[channel].get() : nullptr;
  }

  ChannelRecorder* recorder(ChannelId channel) const {
    return channel < recorders_.size() ? recorders_[channel].get() : nullptr;
  }

  std::uint64_t total_violations() const {
    std::uint64_t n = 0;
    for (const auto& c : checkers_)
      if (c != nullptr) n += c->violation_count();
    return n;
  }

 private:
  CheckConfig config_;
  std::vector<std::unique_ptr<ProtocolChecker>> checkers_;
  std::vector<std::unique_ptr<ChannelRecorder>> recorders_;
};

}  // namespace lazydram::check
