// Runtime verification modes (--check / $LAZYDRAM_CHECK).
//
//   off    - no checking (the default; zero cost on the hot path).
//   log    - violations are recorded, counted, traced and log_warn'ed; the
//            run continues (for triage: collect *all* violations of a run).
//   strict - the first violation throws check::ViolationError, which unwinds
//            cleanly through GpuTop::run into the caller (the sweep engine
//            captures it into the job's SweepResult; tests EXPECT_THROW it).
#pragma once

#include <stdexcept>
#include <string>

#include "common/types.hpp"

namespace lazydram::check {

enum class CheckMode : std::uint8_t { kOff, kLog, kStrict };

/// Thrown by a strict-mode ProtocolChecker on the first violation. Derives
/// from std::runtime_error so every existing fault-isolation boundary
/// (SweepEngine::run_one catches std::exception) contains it.
class ViolationError : public std::runtime_error {
 public:
  explicit ViolationError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses "off" / "log" / "strict" (empty string means kOff). An unknown
/// value logs a warning and falls back to kOff rather than aborting: a typo
/// in $LAZYDRAM_CHECK must not kill an otherwise healthy sweep.
CheckMode parse_check_mode(const std::string& text);

const char* check_mode_name(CheckMode mode);

/// Default bound for the no-starvation invariant: no pending request may be
/// older than this many memory cycles. Generous on purpose — DMS delays top
/// out at 2048 cycles, so anything near a million cycles is a wedged queue,
/// not a policy decision.
inline constexpr Cycle kDefaultStarvationBound = 1u << 20;

}  // namespace lazydram::check
