#include "common/config.hpp"

#include <string>

#include "common/assert.hpp"

namespace lazydram {

namespace {

bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

std::string mhz(unsigned v) { return std::to_string(v) + " MHz"; }

}  // namespace

void GpuConfig::validate() const {
  LD_ASSERT(num_sms > 0);
  LD_ASSERT(num_channels > 0);
  LD_ASSERT(warp_size > 0 && warp_size <= 32);
  LD_ASSERT(max_warps_per_sm > 0);

  LD_ASSERT(is_pow2(l1.line_bytes) && l1.line_bytes == kLineBytes);
  LD_ASSERT(is_pow2(l2.line_bytes) && l2.line_bytes == kLineBytes);
  LD_ASSERT(l1.ways > 0 && l1.size_bytes % (l1.ways * l1.line_bytes) == 0);
  LD_ASSERT(l2.ways > 0 && l2.size_bytes % (l2.ways * l2.line_bytes) == 0);
  LD_ASSERT(is_pow2(l1.num_sets()) && is_pow2(l2.num_sets()));

  LD_ASSERT(is_pow2(channel_interleave_bytes));
  LD_ASSERT_MSG(channel_interleave_bytes >= kLineBytes,
                "a 128B transaction must not straddle channels");
  LD_ASSERT(is_pow2(row_bytes) && row_bytes >= channel_interleave_bytes);
  LD_ASSERT(is_pow2(banks_per_channel));
  LD_ASSERT(bank_groups_per_channel > 0 &&
            banks_per_channel % bank_groups_per_channel == 0);
  LD_ASSERT(pending_queue_size > 0);

  LD_ASSERT(mem_clock_mhz > 0 && core_clock_mhz >= mem_clock_mhz);

  LD_ASSERT(timing.tRAS + timing.tRP <= timing.tRC);
  LD_ASSERT(timing.tRCD <= timing.tRAS);
  LD_ASSERT(timing.tBURST > 0);
  // A tFAW below tRRD would be weaker than the pairwise ACT spacing it is
  // meant to tighten — certainly a typo.
  if (timing.tFAW != 0) LD_ASSERT(timing.tFAW >= timing.tRRD);

  LD_ASSERT(scheme.min_delay <= scheme.max_delay);
  LD_ASSERT(scheme.delay_step > 0);
  LD_ASSERT(scheme.profile_window > 0);
  LD_ASSERT(scheme.min_th_rbl >= 1 && scheme.min_th_rbl <= scheme.max_th_rbl);
  LD_ASSERT(scheme.coverage_cap >= 0.0 && scheme.coverage_cap <= 1.0);
  LD_ASSERT(scheme.bwutil_threshold > 0.0 && scheme.bwutil_threshold <= 1.0);

  LD_ASSERT(policy.bliss_threshold > 0);
  LD_ASSERT(policy.bliss_clear_interval > 0);
  LD_ASSERT(policy.rr_cap > 0);
  LD_ASSERT(policy.tune_min_delay <= policy.tune_max_delay);
  LD_ASSERT(policy.tune_step > 0);
  LD_ASSERT(policy.tune_window > 0);
  LD_ASSERT(policy.tune_tolerance > 0.0 && policy.tune_tolerance <= 1.0);
}

std::vector<std::pair<std::string, std::string>> GpuConfig::describe() const {
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("Core clock", mhz(core_clock_mhz));
  rows.emplace_back("SMs", std::to_string(num_sms));
  rows.emplace_back("SIMD width", std::to_string(simd_width));
  rows.emplace_back("Max warps / SM", std::to_string(max_warps_per_sm) + " (" +
                                          std::to_string(warp_size) + " threads/warp)");
  rows.emplace_back("L1 data cache / SM",
                    std::to_string(l1.size_bytes / 1024) + "KB " + std::to_string(l1.ways) +
                        "-way, " + std::to_string(l1.line_bytes) + "B lines");
  rows.emplace_back("L2 cache / channel",
                    std::to_string(l2.size_bytes / 1024) + "KB " + std::to_string(l2.ways) +
                        "-way (" + std::to_string(l2.size_bytes * num_channels / 1024) +
                        "KB total), " + std::to_string(l2.line_bytes) + "B lines");
  rows.emplace_back("Memory controllers",
                    std::to_string(num_channels) + " GDDR5 MCs, FR-FCFS scheduling");
  rows.emplace_back("Banks / MC", std::to_string(banks_per_channel) + " (" +
                                      std::to_string(bank_groups_per_channel) +
                                      " bank groups)");
  rows.emplace_back("Memory clock", mhz(mem_clock_mhz));
  rows.emplace_back("Address interleaving",
                    "linear space in chunks of " +
                        std::to_string(channel_interleave_bytes) + " bytes");
  rows.emplace_back("DRAM row size", std::to_string(row_bytes) + " bytes");
  rows.emplace_back("Pending queue", std::to_string(pending_queue_size) + " entries / MC");
  rows.emplace_back(
      "GDDR5 timing",
      "tCL=" + std::to_string(timing.tCL) + ", tRP=" + std::to_string(timing.tRP) +
          ", tRC=" + std::to_string(timing.tRC) + ", tRAS=" + std::to_string(timing.tRAS) +
          ", tCCD=" + std::to_string(timing.tCCD) + ", tRCD=" + std::to_string(timing.tRCD) +
          ", tRRD=" + std::to_string(timing.tRRD) +
          ", tCDLR=" + std::to_string(timing.tCDLR) +
          (timing.tFAW != 0 ? ", tFAW=" + std::to_string(timing.tFAW) : ""));
  rows.emplace_back("Interconnect", "1 crossbar/direction (" + std::to_string(num_sms) +
                                        " SMs, " + std::to_string(num_channels) +
                                        " MCs), " + mhz(core_clock_mhz) + ", latency " +
                                        std::to_string(icnt_latency) + " cycles");
  rows.emplace_back("DMS", "static delay " + std::to_string(scheme.static_delay) +
                               ", range [" + std::to_string(scheme.min_delay) + ", " +
                               std::to_string(scheme.max_delay) + "], step " +
                               std::to_string(scheme.delay_step) + ", window " +
                               std::to_string(scheme.profile_window));
  rows.emplace_back("AMS", "static Th_RBL " + std::to_string(scheme.static_th_rbl) +
                               ", range [" + std::to_string(scheme.min_th_rbl) + ", " +
                               std::to_string(scheme.max_th_rbl) + "], coverage cap " +
                               std::to_string(static_cast<int>(scheme.coverage_cap * 100)) +
                               "%");
  return rows;
}

}  // namespace lazydram
