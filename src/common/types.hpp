// Fundamental type aliases shared by every lazydram module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lazydram {

/// Global byte address in the GPU's linear address space.
using Addr = std::uint64_t;

/// Cycle count. Each clock domain keeps its own cycle counter; the domain is
/// always clear from context (core vs. memory cycles).
using Cycle = std::uint64_t;

/// Monotonically increasing identifier for memory requests.
using RequestId = std::uint64_t;

/// Identifies one of the GPU's streaming multiprocessors.
using SmId = std::uint32_t;

/// Identifies one tenant (client) of a multi-tenant run. Single-workload
/// runs put everything under tenant 0.
using TenantId = std::uint32_t;

/// Identifies a memory partition / memory controller (channel).
using ChannelId = std::uint32_t;

/// Identifies a DRAM bank within a channel.
using BankId = std::uint32_t;

/// Identifies a DRAM row within a bank.
using RowId = std::uint64_t;

/// Sentinel for "no row open" and similar.
inline constexpr RowId kInvalidRow = ~RowId{0};

/// Sentinel cycle meaning "never" / "not scheduled".
inline constexpr Cycle kNeverCycle = ~Cycle{0};

/// Sentinel for "no request". Real ids are small monotonic integers
/// (allocation starts at 1), so the all-ones pattern is never a live id.
/// Decision::none()/gated() carry this so a kNone answer can never alias a
/// real request.
inline constexpr RequestId kInvalidRequest = ~RequestId{0};

/// Size of one cache line / DRAM transaction in bytes (Table I: 128B blocks).
inline constexpr std::size_t kLineBytes = 128;

/// Returns the line-aligned base address of `a`.
constexpr Addr line_base(Addr a) { return a & ~static_cast<Addr>(kLineBytes - 1); }

}  // namespace lazydram
