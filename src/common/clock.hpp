// Clock-domain crossing for the cycle-driven simulator.
//
// The GPU core/interconnect domain runs at 1400 MHz and the GDDR5 command
// clock at 924 MHz (Table I). The simulator advances one core cycle at a time;
// ClockDivider answers "how many memory-domain ticks fall inside this core
// cycle" using exact integer arithmetic (no floating-point drift).
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace lazydram {

class ClockDivider {
 public:
  /// `numer`/`denom` is the ratio slow_freq / fast_freq, e.g. 924/1400.
  ClockDivider(std::uint64_t numer, std::uint64_t denom) : numer_(numer), denom_(denom) {
    LD_ASSERT(numer > 0 && denom > 0);
    LD_ASSERT_MSG(numer <= denom, "slow domain must not be faster than fast domain");
  }

  /// Advances one fast-domain cycle; returns the number of slow-domain ticks
  /// (0 or 1 when numer <= denom) elapsing within it.
  unsigned tick() {
    acc_ += numer_;
    unsigned ticks = 0;
    while (acc_ >= denom_) {
      acc_ -= denom_;
      ++ticks;
      ++slow_cycles_;
    }
    return ticks;
  }

  Cycle slow_cycles() const { return slow_cycles_; }

  void reset() {
    acc_ = 0;
    slow_cycles_ = 0;
  }

 private:
  std::uint64_t numer_;
  std::uint64_t denom_;
  std::uint64_t acc_ = 0;
  Cycle slow_cycles_ = 0;
};

}  // namespace lazydram
