// Clock-domain crossing for the cycle-driven simulator.
//
// The GPU core/interconnect domain runs at 1400 MHz and the GDDR5 command
// clock at 924 MHz (Table I). The simulator advances one core cycle at a time;
// ClockDivider answers "how many memory-domain ticks fall inside this core
// cycle" using exact integer arithmetic (no floating-point drift).
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace lazydram {

class ClockDivider {
 public:
  /// `numer`/`denom` is the ratio slow_freq / fast_freq, e.g. 924/1400.
  ClockDivider(std::uint64_t numer, std::uint64_t denom) : numer_(numer), denom_(denom) {
    LD_ASSERT(numer > 0 && denom > 0);
    LD_ASSERT_MSG(numer <= denom, "slow domain must not be faster than fast domain");
  }

  /// Advances one fast-domain cycle; returns the number of slow-domain ticks
  /// (0 or 1 when numer <= denom) elapsing within it.
  unsigned tick() {
    acc_ += numer_;
    unsigned ticks = 0;
    while (acc_ >= denom_) {
      acc_ -= denom_;
      ++ticks;
      ++slow_cycles_;
    }
    return ticks;
  }

  Cycle slow_cycles() const { return slow_cycles_; }

  /// Advances `fast_cycles` fast-domain cycles at once. Equivalent to calling
  /// tick() that many times (exact integer arithmetic, so the accumulator and
  /// slow_cycles land on identical values); the intermediate per-cycle tick
  /// counts are not reported — callers bulk-advancing must know no slow-domain
  /// work was skipped (the event-wheel main loop's contract).
  void advance(Cycle fast_cycles) {
    acc_ += fast_cycles * numer_;
    slow_cycles_ += acc_ / denom_;
    acc_ %= denom_;
  }

  /// Smallest k >= 1 such that advancing k fast cycles makes slow_cycles()
  /// reach `slow_target` (>= current slow_cycles() + 1): the fast-domain
  /// cycle on which slow tick `slow_target` fires. Used to translate
  /// memory-domain event horizons into core-domain skip lengths.
  Cycle fast_cycles_until(Cycle slow_target) const {
    LD_ASSERT(slow_target > slow_cycles_);
    const std::uint64_t d = slow_target - slow_cycles_;
    // Need acc_ + k*numer_ >= d*denom_, i.e. k = ceil((d*denom_ - acc_)/numer_).
    const std::uint64_t need = d * denom_ - acc_;
    return (need + numer_ - 1) / numer_;
  }

  void reset() {
    acc_ = 0;
    slow_cycles_ = 0;
  }

 private:
  std::uint64_t numer_;
  std::uint64_t denom_;
  std::uint64_t acc_ = 0;
  Cycle slow_cycles_ = 0;
};

}  // namespace lazydram
