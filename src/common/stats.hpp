// Lightweight statistics primitives used across the simulator.
//
// Counters and histograms are plain value types owned by the component that
// increments them; StatRegistry provides an optional flat name -> value view
// for reporting. Nothing here is thread-aware: each instance is owned and
// mutated by exactly one component, and the sharded main loop only ever
// reads them from the main thread at epoch barriers. Shard-local histograms
// reconcile through Histogram::merge, which is exact and order-independent.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace lazydram {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Fixed-bucket histogram over small integer keys (e.g. RBL values). Keys
/// greater than `max_key` are clamped into the overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::uint64_t max_key = 64) : buckets_(max_key + 2, 0), max_key_(max_key) {}

  void add(std::uint64_t key, std::uint64_t count = 1) {
    const std::uint64_t idx = key <= max_key_ ? key : max_key_ + 1;
    buckets_[idx] += count;
    total_ += count;
    weighted_sum_ += key * count;
  }

  /// Count recorded at exactly `key` (keys > max_key are pooled); querying
  /// `max_key() + 1` returns the overflow bucket.
  std::uint64_t at(std::uint64_t key) const {
    LD_ASSERT(key <= max_key_ + 1);
    return buckets_[key];
  }

  /// Count of samples whose key fell in [lo, hi], inclusive.
  std::uint64_t in_range(std::uint64_t lo, std::uint64_t hi) const {
    std::uint64_t sum = 0;
    for (std::uint64_t k = lo; k <= hi && k <= max_key_; ++k) sum += buckets_[k];
    return sum;
  }

  std::uint64_t overflow() const { return buckets_[max_key_ + 1]; }
  std::uint64_t total() const { return total_; }
  std::uint64_t max_key() const { return max_key_; }

  /// Number of addressable buckets: keys 0..max_key plus the overflow bucket.
  std::size_t bucket_count() const { return buckets_.size(); }

  /// Smallest key whose cumulative count reaches fraction `p` of the total
  /// (p clamped to [0, 1]). Samples pooled in the overflow bucket report
  /// `max_key() + 1`. An empty histogram reports 0.
  std::uint64_t percentile(double p) const;

  /// Mean of recorded keys (overflowed samples contribute their true key to
  /// the weighted sum, so the mean remains exact).
  double mean() const { return total_ == 0 ? 0.0 : static_cast<double>(weighted_sum_) / static_cast<double>(total_); }

  /// Folds `other` into this histogram. Exact and order-independent: buckets
  /// (including overflow) and the true-key weighted sum add element-wise, so
  /// merging shard- or channel-local histograms in any order reproduces the
  /// serial percentiles AND the serial mean bit-for-bit. This is NOT the same
  /// as re-adding `other`'s buckets through add(): the overflow bucket would
  /// re-enter at the clamped key max_key()+1 and corrupt the weighted sum.
  /// Both histograms must share one geometry.
  void merge(const Histogram& other) {
    LD_ASSERT_MSG(max_key_ == other.max_key_, "merging histograms of different geometry");
    for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
    total_ += other.total_;
    weighted_sum_ += other.weighted_sum_;
  }

  void reset() {
    for (auto& b : buckets_) b = 0;
    total_ = 0;
    weighted_sum_ = 0;
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t max_key_;
  std::uint64_t total_ = 0;
  std::uint64_t weighted_sum_ = 0;
};

/// Running mean/min/max of a real-valued sample stream.
class Summary {
 public:
  void add(double x) {
    if (count_ == 0 || x < min_) min_ = x;
    if (count_ == 0 || x > max_) max_ = x;
    sum_ += x;
    ++count_;
  }

  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return min_; }
  double max() const { return max_; }
  std::uint64_t count() const { return count_; }

  void reset() { *this = Summary{}; }

 private:
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::uint64_t count_ = 0;
};

/// Flat name -> scalar snapshot used by reports and tests.
class StatRegistry {
 public:
  void set(const std::string& name, double value) { values_[name] = value; }
  double get(const std::string& name) const;
  bool contains(const std::string& name) const { return values_.count(name) != 0; }
  const std::map<std::string, double>& values() const { return values_; }

 private:
  std::map<std::string, double> values_;
};

}  // namespace lazydram
