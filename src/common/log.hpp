// Minimal leveled logging. Warnings are on by default (misconfiguration must
// not fail silently); info/debug are off so benches print only their tables.
// The level can be raised per-process with set_log_level() or the
// LAZYDRAM_LOG environment variable (silent|warn|info|debug), parsed once at
// first use.
#pragma once

#include <cstdarg>

namespace lazydram {

enum class LogLevel { kSilent = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style; a newline is appended.
void log_warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace lazydram
