// Minimal leveled logging. Off by default so benches print only their tables;
// tests and debugging sessions can raise the level per-process.
#pragma once

#include <cstdarg>

namespace lazydram {

enum class LogLevel { kSilent = 0, kInfo = 1, kDebug = 2 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style; a newline is appended.
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace lazydram
