// Minimal leveled logging. Warnings are on by default (misconfiguration must
// not fail silently); info/debug are off so benches print only their tables.
// The level can be raised per-process with set_log_level() or the
// LAZYDRAM_LOG environment variable (silent|warn|info|debug), parsed once at
// first use.
//
// Every line goes through one mutex-guarded writer that formats the whole
// line into a buffer and emits it with a single fwrite, so concurrent shard
// lanes / sweep workers can never interleave partial lines. The leveled
// helpers additionally pass a token-bucket rate limiter (a misbehaving
// per-cycle warn site cannot flood stderr); suppressed lines are counted and
// acknowledged when output resumes.
#pragma once

#include <cstdarg>

namespace lazydram {

enum class LogLevel { kSilent = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style; a newline is appended.
void log_warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Operational status line (heartbeats, flight dumps): printed at every
/// level except silent, serialized with the other writers, and exempt from
/// the rate limiter — a status line must never be the casualty of a warn
/// flood.
void log_status(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace lazydram
