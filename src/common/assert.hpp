// Always-on invariant checks. Simulator correctness depends on timing-model
// invariants that are cheap to verify, so these stay enabled in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lazydram::detail {

/// Crash hook invoked after the failure message is printed, before abort().
/// The flight recorder (telemetry/flight.cpp) installs itself here so a
/// failing LD_ASSERT dumps the last-K telemetry events instead of discarding
/// them. The hook must not assume simulator state is consistent.
using AssertHook = void (*)(const char* expr, const char* file, int line,
                            const char* msg);

inline AssertHook& assert_hook() {
  static AssertHook hook = nullptr;
  return hook;
}

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "lazydram assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  if (AssertHook hook = assert_hook()) hook(expr, file, line, msg);
  std::abort();
}

}  // namespace lazydram::detail

#define LD_ASSERT(expr)                                                      \
  do {                                                                       \
    if (!(expr)) ::lazydram::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define LD_ASSERT_MSG(expr, msg)                                             \
  do {                                                                       \
    if (!(expr)) ::lazydram::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
