// Plain-text table and CSV emission for benches and reports. Every paper
// figure/table bench prints through TextTable so output format is uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lazydram {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 3);
  /// Formats `v` as a percentage with sign, e.g. "-12.3%".
  static std::string pct(double v, int precision = 1);

  /// Renders with aligned columns and a separator under the header.
  void print(std::ostream& os) const;
  /// Renders as CSV (no alignment padding).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lazydram
