// Simulated-GPU configuration. Defaults reproduce Table I of the paper
// ("Key configuration parameters of the simulated GPU") plus the lazy-
// scheduler parameters fixed in Section IV (window sizes, thresholds, ranges).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace lazydram {

/// GDDR5 command-timing parameters in memory-clock cycles (Table I, Hynix
/// GDDR5 H5GQ1H24AFR). tWL/tWR are not listed in Table I but are required for
/// a legal command engine; values follow the same Hynix datasheet family.
struct DramTiming {
  unsigned tCL = 12;    ///< CAS (read) latency: RD -> first data beat.
  unsigned tRP = 12;    ///< Precharge period: PRE -> ACT of same bank.
  unsigned tRC = 40;    ///< Row cycle: ACT -> ACT of same bank.
  unsigned tRAS = 28;   ///< Row active: ACT -> PRE of same bank.
  unsigned tCCD = 2;    ///< CAS -> CAS, same bank group.
  unsigned tRCD = 12;   ///< ACT -> first RD/WR of same bank.
  unsigned tRRD = 6;    ///< ACT -> ACT, different banks of same channel.
  unsigned tCDLR = 5;   ///< Last write data -> RD of same bank (write-to-read).
  unsigned tWL = 4;     ///< Write latency: WR -> first data beat.
  unsigned tWR = 12;    ///< Write recovery: last write data -> PRE of same bank.
  unsigned tBURST = 4;  ///< Data-bus occupancy of one 128B transaction.
  /// Four-activate window: at most 4 ACTs per channel within any tFAW
  /// cycles. Not listed in Table I, so it defaults to 0 (disabled) to keep
  /// reproduced results bit-identical; set it to model current-limited parts.
  unsigned tFAW = 0;
};

/// Event energies in nanojoules. Row energy (the quantity the paper reports)
/// is the ACT + restore + PRE cost paid once per row activation; RD/WR access
/// energy is paid per 128B column access. Absolute values are representative
/// GDDR5 numbers (GPUWattch/Hynix scale); all paper results are normalized,
/// so only the *ratios* influence reproduced shapes.
struct EnergyParams {
  double act_nj = 1.2;        ///< Row activation (wordline + sensing).
  double restore_nj = 1.0;    ///< Restoring row buffer contents to the cells.
  double pre_nj = 0.8;        ///< Precharge of the bank's bitlines.
  double rd_access_nj = 1.0;  ///< One 128B read column access + burst I/O.
  double wr_access_nj = 1.1;  ///< One 128B write column access + burst I/O.

  // --- State-based accounting (PowerAccountant) ---
  // Background power is charged per bank-cycle over exact state residencies;
  // refresh is one all-bank burst every tREFI. Representative GDDR5 scale
  // (IDD-derived ballpark); as with the event energies above, only the
  // ratios influence reproduced shapes.
  double act_stby_nj_per_cycle = 0.010;  ///< Per bank-cycle with a row open.
  double pre_stby_nj_per_cycle = 0.006;  ///< Per bank-cycle precharged.
  double ref_per_bank_nj = 2.5;          ///< One refresh burst of one bank.
  /// Memory cycles between refresh bursts (~3.9 us at 924 MHz); 0 disables
  /// refresh energy. Energy-only: no REF command exists in the timing model.
  unsigned trefi_cycles = 3600;

  /// Fraction of total memory-system energy that is row energy for the HBM
  /// projection reported in Section V ("Effect on Memory Energy"). The
  /// analytic constants below are the paper's assumed shares; the HBM bench
  /// additionally *derives* shares from the measured GDDR5 breakdown via the
  /// component scale factors and reports the delta.
  double hbm1_row_share = 0.50;
  double hbm2_row_share = 0.25;

  /// Per-component energy scale of HBM relative to GDDR5 (shorter, wider,
  /// lower-voltage I/O shrinks access energy most; background shrinks less;
  /// HBM1 keeps GDDR5's activation granularity so its row energy scales ~1,
  /// while HBM2's pseudo-channel mode halves the activated page and drops
  /// the array voltage, cutting energy per ACT). Used only to derive
  /// measured HBM row shares in bench_hbm_projection.
  double hbm1_row_scale = 1.0;
  double hbm1_access_scale = 0.35;
  double hbm1_background_scale = 0.80;
  double hbm2_row_scale = 0.25;
  double hbm2_access_scale = 0.18;
  double hbm2_background_scale = 0.70;

  double row_energy_per_act_nj() const { return act_nj + restore_nj + pre_nj; }
};

/// Per-tenant error-tolerance budgets for multi-tenant runs. Defaults mean
/// "inherit the global knob", so a vector of default-constructed TenantQos
/// behaves exactly like the legacy global budgets.
struct TenantQos {
  /// AMS prediction-coverage cap for this tenant's approximable reads;
  /// negative inherits SchemeParams::coverage_cap.
  double coverage_cap = -1.0;
  /// Upper bound on the DMS aging delay applied to this tenant's requests;
  /// kNeverCycle inherits the scheduler's (possibly dynamic) global delay.
  Cycle dms_delay_cap = kNeverCycle;
};

/// Parameters of the lazy memory scheduler (Section IV).
struct SchemeParams {
  // --- DMS ---
  Cycle static_delay = 128;        ///< Static-DMS: DMS(128).
  Cycle min_delay = 0;             ///< Dyn-DMS lower bound.
  Cycle max_delay = 2048;          ///< Dyn-DMS upper bound.
  Cycle delay_step = 128;          ///< Dyn-DMS additive step.
  Cycle profile_window = 4096;     ///< Window size in memory cycles.
  unsigned windows_per_restart = 32;  ///< Dyn-DMS restarts its search each N windows.
  double bwutil_threshold = 0.95;  ///< Keep BWUTIL >= 95% of sampled baseline.

  // --- AMS ---
  unsigned static_th_rbl = 8;      ///< Static-AMS: AMS(8).
  unsigned min_th_rbl = 1;
  unsigned max_th_rbl = 8;
  double coverage_cap = 0.10;      ///< User-defined prediction coverage (10%).

  // --- VP unit ---
  unsigned vp_set_radius = 4;      ///< Search +/- R nearby L2 sets.
  bool vp_zero_fill = false;       ///< Ablation: predict zero lines instead.
  std::uint64_t l2_warmup_fills = 512;  ///< AMS disabled until this many L2 fills.

  // --- Multi-tenancy ---
  /// Per-tenant error-tolerance budgets, indexed by TenantId. Empty (the
  /// default) keeps the legacy single-tenant semantics: one global coverage
  /// cap, one global DMS delay. When non-empty the AMS coverage cap and the
  /// DMS aging delay are partitioned per client (the protocol checker and
  /// the golden model enforce/honor the same per-tenant budgets).
  std::vector<TenantQos> tenant_qos;
};

/// Per-policy knobs for the scheduler plugins behind the SchedulerRegistry
/// (src/core/scheduler_registry.*). `name` selects the policy; only the
/// block matching the selected policy is read, the rest is inert. Parsed
/// from $LAZYDRAM_POLICY ("name[:key=value,...]") and bench CLI flags.
struct PolicyParams {
  /// Registry name of the scheduling policy: "lazy" (the paper's
  /// DMS/AMS-capable scheduler, configured by a SchemeSpec), "frfcfs",
  /// "fcfs", "bliss", "batch-rr" or "autotune". Empty selects "lazy" so
  /// existing configs keep their meaning.
  std::string name;

  // --- BLISS (blacklisting for fairness; keys: threshold, interval) ---
  /// Consecutive serves from one warp group (SM) before it is blacklisted.
  unsigned bliss_threshold = 4;
  /// Blacklist clearing interval in memory cycles.
  Cycle bliss_clear_interval = 8192;

  // --- Batch-cap RR (key: cap) ---
  /// Consecutive row hits one bank may stream before the policy rotates to
  /// the oldest request of another pending row.
  unsigned rr_cap = 4;

  // --- Hill-climbing delay autotuner (keys: min, max, step, window, tol) ---
  Cycle tune_min_delay = 0;      ///< Gating-delay search lower bound.
  Cycle tune_max_delay = 2048;   ///< Gating-delay search upper bound.
  Cycle tune_step = 128;         ///< Initial hill-climb step (adapts 8x both ways).
  Cycle tune_window = 4096;      ///< Measurement window in memory cycles.
  double tune_tolerance = 0.95;  ///< Keep BWUTIL >= this fraction of the best seen.
};

/// Cache geometry.
struct CacheGeometry {
  std::uint32_t size_bytes = 0;
  std::uint32_t ways = 0;
  std::uint32_t line_bytes = kLineBytes;
  std::uint32_t mshr_entries = 32;

  std::uint32_t num_sets() const { return size_bytes / (ways * line_bytes); }
};

/// Full simulated-GPU configuration (Table I defaults).
struct GpuConfig {
  // SM features.
  unsigned core_clock_mhz = 1400;
  unsigned num_sms = 30;
  unsigned simd_width = 32;
  unsigned max_warps_per_sm = 48;
  unsigned warp_size = 32;

  // Caches. L1D 16KB 4-way per SM; L2 128KB 8-way per memory channel.
  CacheGeometry l1{16 * 1024, 4, kLineBytes, 64};
  CacheGeometry l2{128 * 1024, 8, kLineBytes, 128};
  unsigned l1_hit_latency = 24;  ///< Core cycles from L1 hit to operand ready.
  unsigned l2_hit_latency = 48;  ///< Core cycles of L2 lookup/service.

  // Memory model.
  unsigned mem_clock_mhz = 924;
  unsigned num_channels = 6;
  unsigned banks_per_channel = 16;
  unsigned bank_groups_per_channel = 4;
  unsigned row_bytes = 2048;
  unsigned channel_interleave_bytes = 256;  ///< Linear space interleaved in 256B chunks.
  unsigned pending_queue_size = 128;
  DramTiming timing{};
  EnergyParams energy{};

  // Interconnect: one crossbar per direction, fixed traversal latency in core
  // cycles plus per-port single-flit bandwidth per cycle.
  unsigned icnt_latency = 8;

  SchemeParams scheme{};

  /// Scheduler-policy selection + per-policy knobs (see PolicyParams). The
  /// SchedulerRegistry is the single construction path for all of them.
  PolicyParams policy{};

  /// Enables the memory controller's schedulability fast paths (skip
  /// decide() for banks with no pending work, restrict the AMS drop pass,
  /// short-circuit fully idle cycles). Proven result-equivalent by the
  /// tools/diffcheck matrix and the strict-mode checker; LAZYDRAM_FAST=off
  /// (or =0) disables it for A/B comparison.
  bool fast_path = true;

  /// Sharded execution of GpuTop's run loop. 0 (default) keeps the legacy
  /// cycle-by-cycle loop; 1 switches to the event-wheel driver (fast-forward
  /// over quiet spans between deterministic synchronization points) on the
  /// calling thread; N > 1 additionally partitions the memory controllers
  /// into N worker lanes that advance independently inside each epoch, with
  /// telemetry buffered per lane and replayed in (cycle, channel) order at
  /// the barrier. Results and trace output are bit-identical for every
  /// value (proven by the Sharding.* lockstep tests and tools/diffcheck);
  /// LAZYDRAM_SHARD=N selects it for full-simulation runs.
  unsigned shard_threads = 0;

  /// Enables the per-bank state-residency power accountant (src/dram/power).
  /// Strictly passive — results are bit-identical either way (proven by
  /// PowerAccounting.OffIsBitIdentical); off only removes the O(1)-per-
  /// command bookkeeping and the energy-breakdown outputs.
  /// LAZYDRAM_POWER=off (or =0) disables it for A/B comparison.
  bool power_accounting = true;

  /// Arms the wall-clock self-profiler (telemetry/selfprof) for this run:
  /// zone trees, per-lane busy/barrier-stall attribution, and the
  /// self_profile block in the JSON run report. Strictly passive — results
  /// and trace output are byte-identical either way (proven by
  /// FlightRecorder.OnIsBitIdentical); the overhead is gated at 5% by
  /// bench_micro --perf. LAZYDRAM_SELFPROF=1 (or --self-profile on the
  /// figure benches) enables it for full-simulation runs.
  bool self_profile = false;

  /// Emits a run-health status line to stderr every this-many wall-clock
  /// seconds (sim cycles, Mcyc/s, warps done, ETA, queue depths, lane
  /// utilization). 0 disables. LAZYDRAM_HEARTBEAT=seconds (or --heartbeat)
  /// selects it for full-simulation runs.
  double heartbeat_seconds = 0.0;

  std::uint64_t seed = 0x1aE5D8A3u;

  /// Aborts (LD_ASSERT) if any derived quantity is inconsistent, e.g. cache
  /// geometry not power-of-two or interleave smaller than a line.
  void validate() const;

  /// Human-readable Table-I-style listing, one "key: value" row per line.
  std::vector<std::pair<std::string, std::string>> describe() const;
};

}  // namespace lazydram
