// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every source of randomness in the simulator flows through an explicitly
// seeded Rng so that a run is reproducible bit-for-bit from its seed. This is
// required by the determinism property tests and keeps experiment results
// stable across machines (no dependence on std::random_device or libstdc++
// distribution implementations).
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace lazydram {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  /// Re-initializes state from `seed` via splitmix64 so that nearby seeds
  /// yield uncorrelated streams.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be nonzero. Uses rejection
  /// sampling to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) {
    LD_ASSERT(bound != 0);
    const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double next_range(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Bernoulli trial with probability `p`.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace lazydram
