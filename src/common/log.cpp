#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lazydram {

namespace {
LogLevel g_level = LogLevel::kWarn;
bool g_level_set = false;

LogLevel level_from_env() {
  const char* v = std::getenv("LAZYDRAM_LOG");
  if (v == nullptr) return LogLevel::kWarn;
  if (std::strcmp(v, "silent") == 0 || std::strcmp(v, "0") == 0) return LogLevel::kSilent;
  if (std::strcmp(v, "warn") == 0 || std::strcmp(v, "1") == 0) return LogLevel::kWarn;
  if (std::strcmp(v, "info") == 0 || std::strcmp(v, "2") == 0) return LogLevel::kInfo;
  if (std::strcmp(v, "debug") == 0 || std::strcmp(v, "3") == 0) return LogLevel::kDebug;
  std::fprintf(stderr, "[lazydram:warn] unknown LAZYDRAM_LOG value '%s' (want silent|warn|info|debug)\n", v);
  return LogLevel::kWarn;
}

LogLevel effective_level() {
  if (!g_level_set) {
    g_level = level_from_env();
    g_level_set = true;
  }
  return g_level;
}

void vlog(const char* prefix, const char* fmt, va_list args) {
  std::fputs(prefix, stderr);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level = level;
  g_level_set = true;
}

LogLevel log_level() { return effective_level(); }

void log_warn(const char* fmt, ...) {
  if (effective_level() < LogLevel::kWarn) return;
  va_list args;
  va_start(args, fmt);
  vlog("[lazydram:warn] ", fmt, args);
  va_end(args);
}

void log_info(const char* fmt, ...) {
  if (effective_level() < LogLevel::kInfo) return;
  va_list args;
  va_start(args, fmt);
  vlog("[lazydram] ", fmt, args);
  va_end(args);
}

void log_debug(const char* fmt, ...) {
  if (effective_level() < LogLevel::kDebug) return;
  va_list args;
  va_start(args, fmt);
  vlog("[lazydram:debug] ", fmt, args);
  va_end(args);
}

}  // namespace lazydram
