#include "common/log.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace lazydram {

namespace {
LogLevel g_level = LogLevel::kWarn;
bool g_level_set = false;

LogLevel level_from_env() {
  const char* v = std::getenv("LAZYDRAM_LOG");
  if (v == nullptr) return LogLevel::kWarn;
  if (std::strcmp(v, "silent") == 0 || std::strcmp(v, "0") == 0) return LogLevel::kSilent;
  if (std::strcmp(v, "warn") == 0 || std::strcmp(v, "1") == 0) return LogLevel::kWarn;
  if (std::strcmp(v, "info") == 0 || std::strcmp(v, "2") == 0) return LogLevel::kInfo;
  if (std::strcmp(v, "debug") == 0 || std::strcmp(v, "3") == 0) return LogLevel::kDebug;
  std::fprintf(stderr, "[lazydram:warn] unknown LAZYDRAM_LOG value '%s' (want silent|warn|info|debug)\n", v);
  return LogLevel::kWarn;
}

LogLevel effective_level() {
  if (!g_level_set) {
    g_level = level_from_env();
    g_level_set = true;
  }
  return g_level;
}

// Serialized writer state. The mutex covers formatting state too (the rate
// bucket), not just the fwrite, so a line and its bookkeeping are atomic.
std::mutex g_log_mu;

// Token bucket for the leveled helpers: kBurst lines instantly, then
// kRefillPerSec sustained. Generous enough that no legitimate site ever hits
// it; a per-cycle warn loop in a multi-million-cycle run does.
constexpr double kBurst = 500.0;
constexpr double kRefillPerSec = 250.0;
double g_tokens = kBurst;
std::uint64_t g_suppressed = 0;
std::chrono::steady_clock::time_point g_last_refill;
bool g_bucket_init = false;

// Formats prefix + message + '\n' into one buffer and writes it with a
// single fwrite so concurrent callers cannot interleave partial lines.
// Must be called with g_log_mu held.
void write_line_locked(const char* prefix, const char* fmt, va_list args) {
  char buf[1024];
  int n = std::snprintf(buf, sizeof(buf), "%s", prefix);
  if (n < 0) return;
  n = std::min(n, static_cast<int>(sizeof(buf)) - 2);
  const int body = std::vsnprintf(buf + n, sizeof(buf) - 1 - n, fmt, args);
  if (body > 0) n = std::min(n + body, static_cast<int>(sizeof(buf)) - 2);
  buf[n] = '\n';
  std::fwrite(buf, 1, static_cast<std::size_t>(n) + 1, stderr);
}

// Must be called with g_log_mu held. Returns false when the line should be
// dropped (bucket empty).
bool take_token_locked() {
  const auto now = std::chrono::steady_clock::now();
  if (!g_bucket_init) {
    g_last_refill = now;
    g_bucket_init = true;
  }
  const double dt = std::chrono::duration<double>(now - g_last_refill).count();
  g_last_refill = now;
  g_tokens = std::min(kBurst, g_tokens + dt * kRefillPerSec);
  if (g_tokens < 1.0) {
    ++g_suppressed;
    return false;
  }
  g_tokens -= 1.0;
  if (g_suppressed > 0) {
    std::fprintf(stderr,
                 "[lazydram:warn] log rate limit: suppressed %llu line(s)\n",
                 static_cast<unsigned long long>(g_suppressed));
    g_suppressed = 0;
  }
  return true;
}

void vlog(const char* prefix, const char* fmt, va_list args, bool rate_limited) {
  std::lock_guard<std::mutex> lock(g_log_mu);
  if (rate_limited && !take_token_locked()) return;
  write_line_locked(prefix, fmt, args);
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level = level;
  g_level_set = true;
}

LogLevel log_level() { return effective_level(); }

void log_warn(const char* fmt, ...) {
  if (effective_level() < LogLevel::kWarn) return;
  va_list args;
  va_start(args, fmt);
  vlog("[lazydram:warn] ", fmt, args, /*rate_limited=*/true);
  va_end(args);
}

void log_info(const char* fmt, ...) {
  if (effective_level() < LogLevel::kInfo) return;
  va_list args;
  va_start(args, fmt);
  vlog("[lazydram] ", fmt, args, /*rate_limited=*/true);
  va_end(args);
}

void log_debug(const char* fmt, ...) {
  if (effective_level() < LogLevel::kDebug) return;
  va_list args;
  va_start(args, fmt);
  vlog("[lazydram:debug] ", fmt, args, /*rate_limited=*/true);
  va_end(args);
}

void log_status(const char* fmt, ...) {
  if (effective_level() == LogLevel::kSilent) return;
  va_list args;
  va_start(args, fmt);
  vlog("[lazydram] ", fmt, args, /*rate_limited=*/false);
  va_end(args);
}

}  // namespace lazydram
