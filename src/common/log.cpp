#include "common/log.hpp"

#include <cstdio>

namespace lazydram {

namespace {
LogLevel g_level = LogLevel::kSilent;

void vlog(const char* prefix, const char* fmt, va_list args) {
  std::fputs(prefix, stderr);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_info(const char* fmt, ...) {
  if (g_level < LogLevel::kInfo) return;
  va_list args;
  va_start(args, fmt);
  vlog("[lazydram] ", fmt, args);
  va_end(args);
}

void log_debug(const char* fmt, ...) {
  if (g_level < LogLevel::kDebug) return;
  va_list args;
  va_start(args, fmt);
  vlog("[lazydram:debug] ", fmt, args);
  va_end(args);
}

}  // namespace lazydram
