#include "common/table.hpp"

#include <cstdio>
#include <ostream>

#include "common/assert.hpp"

namespace lazydram {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  LD_ASSERT(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  LD_ASSERT_MSG(row.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", precision, v * 100.0);
  return buf;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace lazydram
