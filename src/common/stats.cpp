#include "common/stats.hpp"

namespace lazydram {

double StatRegistry::get(const std::string& name) const {
  const auto it = values_.find(name);
  LD_ASSERT_MSG(it != values_.end(), name.c_str());
  return it->second;
}

}  // namespace lazydram
