#include "common/stats.hpp"

#include <cmath>

namespace lazydram {

std::uint64_t Histogram::percentile(double p) const {
  if (total_ == 0) return 0;
  // Nearest-rank, 1-based; p = 0 (and NaN) means the first sample, p = 1 the
  // last. The epsilon absorbs the upward rounding of p * total (0.07 * 100
  // evaluates to 7.000000000000001, which would otherwise skip to the 8th
  // sample); percentile fractions are never specified to 1e-9 of a rank.
  std::uint64_t rank = 1;
  if (p > 0.0) {
    const double exact = std::min(p, 1.0) * static_cast<double>(total_);
    rank = static_cast<std::uint64_t>(std::ceil(exact - 1e-9));
    if (rank < 1) rank = 1;
    if (rank > total_) rank = total_;
  }
  std::uint64_t cumulative = 0;
  for (std::uint64_t k = 0; k <= max_key_; ++k) {
    cumulative += buckets_[k];
    if (cumulative >= rank) return k;
  }
  return max_key_ + 1;  // The requested rank fell into the overflow bucket.
}

double StatRegistry::get(const std::string& name) const {
  const auto it = values_.find(name);
  LD_ASSERT_MSG(it != values_.end(), name.c_str());
  return it->second;
}

}  // namespace lazydram
