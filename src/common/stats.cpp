#include "common/stats.hpp"

#include <algorithm>

namespace lazydram {

std::uint64_t Histogram::percentile(double p) const {
  if (total_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the sample we are after, 1-based; p = 0 means the first sample.
  const double target = p * static_cast<double>(total_);
  std::uint64_t cumulative = 0;
  for (std::uint64_t k = 0; k <= max_key_; ++k) {
    cumulative += buckets_[k];
    if (static_cast<double>(cumulative) >= target && cumulative > 0) return k;
  }
  return max_key_ + 1;  // The requested rank fell into the overflow bucket.
}

double StatRegistry::get(const std::string& name) const {
  const auto it = values_.find(name);
  LD_ASSERT_MSG(it != values_.end(), name.c_str());
  return it->second;
}

}  // namespace lazydram
