// Interactive parameter explorer: sweep a DMS delay range and an AMS Th_RBL
// range over any workload, printing the trade-off surface (activations, IPC,
// coverage, error). Shows how a user tunes the lazy scheduler for a new app.
//
// Usage: scheme_explorer [workload] [max-delay] [max-th]
//   e.g. scheme_explorer BICG 512 4
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace lazydram;

  const std::string app = argc > 1 ? argv[1] : "SCP";
  const Cycle max_delay = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 512;
  const unsigned max_th = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 8;

  const auto spec_for = [](const sim::ExperimentRunner& runner, Cycle delay, unsigned th) {
    core::SchemeSpec spec;
    if (delay > 0) spec = core::make_static_dms_spec(delay, runner.config().scheme);
    if (th > 0) {
      if (delay > 0)
        spec = core::make_combo_spec(delay, th, runner.config().scheme);
      else
        spec = core::make_static_ams_spec(th, runner.config().scheme);
    }
    return spec;
  };

  sim::ExperimentRunner runner;
  runner.set_jobs(sim::parse_jobs(argc, argv));
  runner.prefetch_baseline(app);
  for (Cycle delay = 0; delay <= max_delay; delay += 128)
    for (unsigned th = 0; th <= max_th; th = th == 0 ? 1 : th * 2)
      runner.prefetch(app, spec_for(runner, delay, th));
  runner.flush();

  const sim::RunMetrics& base = runner.baseline(app);
  std::cout << "Exploring " << app << " (baseline: " << base.activations
            << " activations, IPC " << TextTable::num(base.ipc, 2) << ", Avg-RBL "
            << TextTable::num(base.avg_rbl, 2) << ")\n\n";

  TextTable table({"Delay", "Th_RBL", "Activations", "RowEnergy", "IPC", "Coverage",
                   "AppError"});
  for (Cycle delay = 0; delay <= max_delay; delay += 128) {
    for (unsigned th = 0; th <= max_th; th = th == 0 ? 1 : th * 2) {
      const sim::RunMetrics& m = runner.run(app, spec_for(runner, delay, th));
      table.add_row({std::to_string(delay), th == 0 ? "off" : std::to_string(th),
                     TextTable::num(static_cast<double>(m.activations) /
                                        static_cast<double>(base.activations),
                                    3),
                     TextTable::num(m.row_energy_nj / base.row_energy_nj, 3),
                     TextTable::num(m.ipc / base.ipc, 3),
                     TextTable::num(m.coverage * 100, 1) + "%",
                     TextTable::num(m.app_error * 100, 2) + "%"});
    }
  }
  table.print(std::cout);
  std::cout << "\nAll values normalized to the FR-FCFS baseline.\n";
  return 0;
}
