// Fig. 14 reproduction: run the `laplacian` image-sharpening workload under
// the baseline and under Dyn-DMS+Dyn-AMS, then write the exact and
// approximate output images as PGM files for visual comparison.
//
// Usage: image_approx [output-dir]
#include <iostream>
#include <string>

#include "core/scheduler_registry.hpp"
#include "gpu/gpu_top.hpp"
#include "workloads/apps.hpp"
#include "workloads/image.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace lazydram;
  namespace layout = workloads::laplacian_layout;

  const std::string dir = argc > 1 ? argv[1] : ".";
  const auto workload = workloads::make_workload("laplacian");

  GpuConfig cfg;
  const core::SchemeSpec spec = core::make_scheme_spec(core::SchemeKind::kDynCombo,
                                                       cfg.scheme);
  gpu::GpuTop top(cfg, *workload, core::make_scheduler_factory(cfg, spec));
  std::cout << "Simulating laplacian under Dyn-DMS+Dyn-AMS...\n";
  if (!top.run()) {
    std::cerr << "simulation did not finish\n";
    return 1;
  }

  // Exact pass (pristine inputs) and approximate pass (VP overlay applied).
  gpu::MemoryImage exact_img(top.fmem().image());
  gpu::MemView exact(exact_img, nullptr);
  workload->compute_output(exact);

  gpu::MemoryImage approx_img(top.fmem().image());
  gpu::MemView approx(approx_img, &top.fmem().overlay());
  workload->compute_output(approx);

  const std::string exact_path = dir + "/laplacian_exact.pgm";
  const std::string approx_path = dir + "/laplacian_approx.pgm";
  const bool ok =
      workloads::write_pgm(exact, layout::kOut, layout::kWidth, layout::kHeight,
                           exact_path, layout::kRowSlotBytes) &&
      workloads::write_pgm(approx, layout::kOut, layout::kWidth, layout::kHeight,
                           approx_path, layout::kRowSlotBytes);
  if (!ok) {
    std::cerr << "failed to write PGM files\n";
    return 1;
  }

  const double error = workloads::image_error(exact, approx, layout::kOut, layout::kWidth,
                                              layout::kHeight, layout::kRowSlotBytes);
  std::cout << "Wrote " << exact_path << " and " << approx_path << "\n"
            << "Approximated lines: " << top.fmem().overlay().size() << "\n"
            << "Application (image) error: " << error * 100 << "%\n"
            << "(Paper Fig. 14 shows limited quality degradation at ~17% error.)\n";
  return 0;
}
