// Quickstart: run one workload under the seven paper schemes and print the
// headline metrics (row energy, IPC, coverage, application error).
//
// Usage: quickstart [workload-name]   (default: SCP)
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/scheme.hpp"
#include "sim/simulator.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace lazydram;

  const std::string name = argc > 1 ? argv[1] : "SCP";
  const auto workload = workloads::make_workload(name);

  std::cout << "lazydram quickstart — workload: " << workload->name() << " ("
            << workload->description() << ")\n\n";

  GpuConfig cfg;  // Table I defaults.

  sim::RunMetrics baseline{};
  TextTable table({"Scheme", "Activations", "Avg-RBL", "RowEnergy", "IPC", "Coverage",
                   "AppError", "AvgDelay"});

  for (const core::SchemeKind kind : core::all_schemes()) {
    const sim::RunMetrics m = sim::simulate_scheme(*workload, kind, cfg);
    if (kind == core::SchemeKind::kBaseline) baseline = m;

    const double act_norm =
        static_cast<double>(m.activations) / static_cast<double>(baseline.activations);
    const double energy_norm = m.row_energy_nj / baseline.row_energy_nj;
    const double ipc_norm = m.ipc / baseline.ipc;

    table.add_row({m.scheme, TextTable::num(act_norm, 3) + " x", TextTable::num(m.avg_rbl, 2),
                   TextTable::num(energy_norm, 3) + " x", TextTable::num(ipc_norm, 3) + " x",
                   TextTable::num(m.coverage * 100, 1) + "%",
                   TextTable::num(m.app_error * 100, 2) + "%",
                   TextTable::num(m.avg_delay, 0)});
  }

  table.print(std::cout);
  std::cout << "\n(Activations, row energy and IPC are normalized to Baseline.)\n";
  return 0;
}
