// Extensibility demo: plug a user-defined memory-scheduling policy into the
// simulated GPU via the SchedulerRegistry. Implements "Oldest-Row-First" — a
// toy policy that, on a row miss, opens the row with the MOST pending
// requests instead of the oldest request's row — registers it under the name
// "densest-row", and compares it against FR-FCFS and the paper's Dyn-DMS.
//
// Usage: custom_scheduler [workload]
#include <iostream>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/table.hpp"
#include "core/scheduler_registry.hpp"
#include "gpu/gpu_top.hpp"
#include "sim/metrics.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace lazydram;

/// Toy policy: serve row hits first (like FR-FCFS); on a miss, pick the
/// pending request whose row has the largest pending group — a greedy
/// locality-maximizer that ignores age (and can starve old requests).
class DensestRowFirstScheduler final : public Scheduler {
 public:
  Decision decide(const PendingQueue& queue, const BankView& bank, Cycle now) override {
    (void)now;
    if (bank.row_open) {
      if (const MemRequest* hit = queue.oldest_for_row(bank.bank, bank.open_row))
        return Decision::serve(hit->id);
    }
    const MemRequest* best = nullptr;
    unsigned best_group = 0;
    std::unordered_map<RowId, unsigned> group_size;
    for (const MemRequest* r : queue.bank_requests(bank.bank))
      ++group_size[r->loc.row];
    for (const MemRequest* r : queue.bank_requests(bank.bank)) {
      const unsigned g = group_size[r->loc.row];
      if (g > best_group) {
        best_group = g;
        best = r;
      }
    }
    return best == nullptr ? Decision::none() : Decision::serve(best->id);
  }
};

sim::RunMetrics run_one(const workloads::Workload& wl, const GpuConfig& cfg,
                        const core::SchemeSpec& spec, const std::string& label) {
  gpu::GpuTop top(cfg, wl, core::make_scheduler_factory(cfg, spec));
  top.run();
  return sim::collect_metrics(top, wl, label, /*compute_error=*/false);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "SCP";
  const auto wl = workloads::make_workload(app);

  // One registration makes the policy constructible by name everywhere the
  // registry reaches: here, LAZYDRAM_POLICY=densest-row, bench --policy.
  core::SchedulerRegistry::instance().register_policy(
      "densest-row", "DensestRowFirst",
      "toy demo: open the row with the most pending requests",
      [](const core::PolicyRequest&) -> std::unique_ptr<Scheduler> {
        return std::make_unique<DensestRowFirstScheduler>();
      });

  GpuConfig cfg;
  const sim::RunMetrics base = run_one(*wl, cfg, core::SchemeSpec{}, "FR-FCFS");

  GpuConfig custom_cfg = cfg;
  custom_cfg.policy.name = "densest-row";
  const sim::RunMetrics custom =
      run_one(*wl, custom_cfg, core::SchemeSpec{}, "DensestRowFirst");

  const core::SchemeSpec dyn = core::make_scheme_spec(core::SchemeKind::kDynDms,
                                                      cfg.scheme);
  const sim::RunMetrics dms = run_one(*wl, cfg, dyn, "Dyn-DMS");

  std::cout << "Custom scheduling policy on " << app << ":\n\n";
  TextTable table({"Policy", "Activations", "Avg-RBL", "IPC"});
  for (const sim::RunMetrics* m : {&base, &custom, &dms})
    table.add_row({m->scheme,
                   TextTable::num(static_cast<double>(m->activations) /
                                      static_cast<double>(base.activations),
                                  3),
                   TextTable::num(m->avg_rbl, 2), TextTable::num(m->ipc / base.ipc, 3)});
  table.print(std::cout);
  std::cout << "\nDensestRowFirst trades fairness for locality; Dyn-DMS gets locality\n"
               "while bounding the performance loss via its BWUTIL guard.\n";
  return 0;
}
